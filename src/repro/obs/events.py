"""Append-only structured event log (schema-versioned JSONL).

Where :mod:`repro.obs.metrics` answers "how much / how fast", the event
log answers "what happened, in what order": health-state transitions,
circuit-breaker trips, checkpoint saves and divergence rewinds, fleet
retries, and non-finite-batch skips all become one JSON object per line.
``repro obs report`` reconstructs a run's story from these files alone —
no pickles, no in-process state.

Every record carries::

    {"schema": 1, "seq": <monotonic per log>, "ts": <unix seconds>,
     "kind": "<event kind>", ...payload fields...}

``schema`` is bumped on any backwards-incompatible change so old run
directories stay readable.  Writes are line-buffered appends; a crash can
at worst tear the final line, which :func:`read_events` skips (the same
torn-write stance as the orchestrator's ``result.json``).

A process has one *installed* event log (an in-memory ring by default);
instrumented code calls the module-level :func:`emit` so library layers
never need plumbing.  Workers that should persist their story install a
file-backed log::

    with EventLog(run_dir / "events.jsonl") as log:
        previous = install_event_log(log)
        try:
            ...train...
        finally:
            install_event_log(previous)
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Iterator, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "EventLog",
    "emit",
    "get_event_log",
    "install_event_log",
    "read_events",
]

SCHEMA_VERSION = 1

# The catalogue of event kinds the shipped instrumentation emits.  The
# log accepts any kind string (forward compatibility), but sticking to
# the catalogue keeps `repro obs report` able to tell the whole story.
EVENT_KINDS = frozenset({
    "health_transition",     # service, from, to, tick
    "breaker_trip",          # service, failures
    "checkpoint_save",       # path, epoch
    "checkpoint_rewind",     # epoch, rewound_to, reason, loss, lr
    "nonfinite_batch",       # epoch, batch
    "epoch",                 # epoch, loss, grad_norm, seconds, nonfinite
    "attempt_start",         # group, attempt
    "attempt_end",           # group, attempt, outcome, seconds, exitcode
    "retry",                 # group, attempt, backoff_seconds
    "group_done",            # group, epochs, final_loss, rewinds
    "group_failed",          # group, error
    # Closed-loop remediation (repro.runtime.remediation)
    "incident_open",         # incident, service, tick, trigger
    "diagnosis",             # incident, service, tick, alert_class, reason
    "policy_decision",       # incident, service, tick, allowed, action
    "action_start",          # incident, service, action, rung, tick
    "action_end",            # incident, service, action, outcome, tick
    "action_fault",          # service, fault_kind, action, tick (injected)
    "action_timeout",        # service, action, tick, started_tick, budget
    "action_rollback",       # incident, service, action, tick, reason
    "verification_failed",   # incident, service, tick, reason
    "remediation_verified",  # incident, service, tick, dwell
    "incident_resolved",     # incident, service, tick, actions
    "incident_escalated",    # incident, service, tick, actions
    "page",                  # service, tick, reason
    # Serving gateway (repro.runtime.gateway)
    "worker_spawn",          # shard, respawns, slow_start
    "worker_ready",          # shard, applied
    "worker_failover",       # shard, reason, respawns
    "wal_replay",            # shard, records, wal_records
    "overload_transition",   # from_state, to_state, occupancy
    "tenant_shed",           # tenant, service
    "drain_start",           # pending
    "drain_complete",        # shards
    # SLO engine (repro.obs.slo)
    "slo_burn",              # objective, window, burn_short, burn_long,
    #                        # budget_remaining, tick, service
    "slo_recover",           # objective, window, tick
})


class EventLog:
    """Sequence-numbered JSONL event sink (file-backed or in-memory).

    Keeps the last ``keep`` records in memory for assertions and for the
    in-process default log; when ``path`` is given every record is also
    appended (and flushed) to the file.
    """

    def __init__(self, path: Optional[str | Path] = None, *,
                 keep: int = 4096, clock: Callable[[], float] = time.time):  # effects: ok TIME reason=wall-clock is the default timestamp; drills inject a virtual clock
        self.path = Path(path) if path is not None else None
        self.tail: deque = deque(maxlen=keep)
        self._clock = clock
        self._seq = 0
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    def emit(self, kind: str, **fields: object) -> dict:
        """Append one event; returns the record written."""
        record = {"schema": SCHEMA_VERSION, "seq": self._seq,
                  "ts": self._clock(), "kind": str(kind)}  # effects: ok TIME reason=event timestamps are telemetry, never model input
        self._seq += 1
        for key, value in fields.items():
            record[key] = _jsonable(value)
        self.tail.append(record)
        if self._file is not None:
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()
        return record

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """In-memory tail, optionally filtered by kind."""
        if kind is None:
            return list(self.tail)
        return [record for record in self.tail if record["kind"] == kind]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonable(value: object) -> object:
    """Coerce a payload value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, Path):
        return str(value)
    # numpy scalars, enums, everything else: prefer a numeric value,
    # fall back to the string form.
    for caster in (float, str):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return repr(value)


_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide event log instrumented code emits into."""
    return _LOG


def install_event_log(log: EventLog) -> EventLog:
    """Swap the installed event log; returns the previous one."""
    global _LOG
    previous = _LOG  # effects: ok FORK_GLOBAL reason=swap point by design; workers install their own log on entry
    _LOG = log
    return previous


def emit(kind: str, **fields: object) -> dict:
    """Emit one event into the currently installed log."""
    return _LOG.emit(kind, **fields)  # effects: ok FORK_GLOBAL reason=swap point by design; workers install their own log on entry


def read_events(path: str | Path,
                kind: Optional[str] = None) -> Iterator[dict]:
    """Stream records back from a JSONL event file.

    Blank and torn (undecodable) lines are skipped: an append-only log
    written through a crash is still readable up to the tear.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if kind is None or record.get("kind") == kind:
                yield record
