"""Closed-loop remediation: detect → diagnose → act → verify.

The serving layer (:mod:`repro.runtime.serving`) already *detects* —
breaker trips, health transitions, degraded inputs.  This package closes
the loop around those signals:

:mod:`~repro.runtime.remediation.diagnosis`
    classifies a sick service's root cause (data-quality fault, model
    staleness, anomaly storm) from sanitizer repair rates, the fallback
    scorer's spectral drift, and per-feature model attribution;
:mod:`~repro.runtime.remediation.policy`
    decides whether acting is *allowed* — per-service cooldowns, a
    fleet-wide blast-radius cap, flapping suppression, and per-diagnosis
    escalation ladders that always end on a human hand-off;
:mod:`~repro.runtime.remediation.actions`
    the typed, idempotent, timeout-guarded remedies themselves, plus the
    tick-driven runner that executes them;
:mod:`~repro.runtime.remediation.controller`
    the per-incident state machine that wires the stages together and
    only declares victory after a verified recovery dwell;
:mod:`~repro.runtime.remediation.drill`
    seeded end-to-end fault drills proving the loop converges — the
    ``make drill`` gate.
"""

from repro.runtime.remediation.actions import (
    Action,
    ActionContext,
    ActionOutcome,
    ActionRegistrationError,
    ActionRunner,
    HotSwapDetector,
    QuarantineAndPage,
    RecalibrateSanitizer,
    ResetBreaker,
    RunningAction,
    create_action,
    register_action,
    registered_actions,
)
from repro.runtime.remediation.controller import (
    Incident,
    IncidentState,
    RemediationConfig,
    RemediationController,
)
from repro.runtime.remediation.diagnosis import (
    AlertClass,
    Diagnosis,
    DiagnosisConfig,
    EvidenceWindow,
    attribute_drift,
    diagnose,
    model_attribution,
)
from repro.runtime.remediation.drill import (
    SCENARIOS,
    DrillConfig,
    DrillReport,
    DrillRow,
    run_drill,
)
from repro.runtime.remediation.policy import (
    DEFAULT_LADDERS,
    TERMINAL_ACTION,
    PolicyConfig,
    PolicyDecision,
    PolicyEngine,
)

__all__ = [
    "Action", "ActionContext", "ActionOutcome", "ActionRegistrationError",
    "ActionRunner", "HotSwapDetector", "QuarantineAndPage",
    "RecalibrateSanitizer", "ResetBreaker", "RunningAction",
    "create_action", "register_action", "registered_actions",
    "Incident", "IncidentState", "RemediationConfig",
    "RemediationController",
    "AlertClass", "Diagnosis", "DiagnosisConfig", "EvidenceWindow",
    "attribute_drift", "diagnose", "model_attribution",
    "SCENARIOS", "DrillConfig", "DrillReport", "DrillRow", "run_drill",
    "DEFAULT_LADDERS", "TERMINAL_ACTION", "PolicyConfig", "PolicyDecision",
    "PolicyEngine",
]
