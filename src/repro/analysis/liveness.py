"""Liveness/lifetime analysis and buffer-reuse coloring for plan steps.

Given a topologically ordered step list (the invariant both
:class:`~repro.analysis.trace.Graph` and
:class:`~repro.analysis.plan.ExecutionPlan` maintain), this pass
computes per-step last-use points, then colors op outputs onto a small
pool of reusable buffers with a greedy linear-scan over storage groups
from :mod:`repro.analysis.alias`.  The result doubles as a peak-memory
estimate: ``peak_live_bytes`` is what an executor that frees eagerly
would need, ``pool_bytes`` is what the greedy coloring actually
allocates, and ``naive_bytes`` is the tape's behaviour today (every op
output materialized simultaneously).

Views complicate both directions: a view keeps its whole storage group
alive, so lifetimes are per-group, not per-step; and a view allocates
nothing, so coloring assigns buffers to groups.  Leaf storage is
caller-owned and excluded from the pool entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.alias import (
    FLOAT64_BYTES,
    escaping_groups,
    group_bytes,
    storage_groups,
)

__all__ = ["BufferAssignment", "last_uses", "analyze_liveness"]


@dataclass
class BufferAssignment:
    """Result of the liveness + coloring pass over one step list."""

    last_use: List[int]
    storage_of: List[int]
    escaped: Set[int] = field(default_factory=set)
    # storage group id -> pooled buffer id (op groups only).
    buffer_of: Dict[int, int] = field(default_factory=dict)
    buffer_sizes: List[int] = field(default_factory=list)
    peak_live_bytes: int = 0
    pool_bytes: int = 0
    naive_bytes: int = 0

    @property
    def num_buffers(self) -> int:
        return len(self.buffer_sizes)

    def stats(self) -> Dict[str, int]:
        return {
            "buffers": self.num_buffers,
            "pool_bytes": self.pool_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "naive_bytes": self.naive_bytes,
        }


def last_uses(steps: Sequence, outputs: Sequence[int]) -> List[int]:
    """Index of the final consumer of each step.

    Outputs (and any unconsumed step) stay live to the end of the
    program: their last use is ``len(steps)``, a sentinel one past the
    final step, so "dies at its own index" can never be confused with
    "escapes".
    """
    horizon = len(steps)
    last = [index for index in range(horizon)]
    for index, step in enumerate(steps):
        for parent in step.parents:
            last[parent] = max(last[parent], index)
    for index in outputs:
        last[index] = horizon
    return last


def analyze_liveness(steps: Sequence, outputs: Sequence[int],
                     itemsize: int = FLOAT64_BYTES) -> BufferAssignment:
    """Compute lifetimes and a greedy first-fit buffer coloring."""
    last = last_uses(steps, outputs)
    storage_of = storage_groups(steps)
    escaped = escaping_groups(steps, outputs, storage_of)
    bytes_of = group_bytes(steps, storage_of, itemsize)

    # Per-group birth (representative index — groups are rooted at their
    # first member) and death (max last-use over members).
    group_death: Dict[int, int] = {}
    for index in range(len(steps)):
        group = storage_of[index]
        group_death[group] = max(group_death.get(group, -1), last[index])

    result = BufferAssignment(last_use=last, storage_of=storage_of,
                              escaped=escaped)

    # Free pool: size -> buffer ids available for reuse.  First-fit with
    # exact-size matching keeps the coloring deterministic and is a good
    # fit here because MACE graphs recycle a handful of distinct shapes.
    free: Dict[int, List[int]] = {}
    buffer_sizes: List[int] = []
    live_bytes = 0
    peak = 0
    naive = 0

    # Groups that die at step i, to be released after i executes.
    dying_at: Dict[int, List[int]] = {}
    for group, death in group_death.items():
        dying_at.setdefault(death, []).append(group)

    for index, step in enumerate(steps):
        group = storage_of[index]
        if getattr(step, "kind", "op") == "op":
            # The tape materializes every op output (views excepted — but
            # counting them too is what today's executor pays when a
            # "maybe" view copies, so charge each step its own extent).
            count = 1
            for dim in step.shape:
                count *= int(dim)
            naive += count * itemsize
        # Allocation happens when the group's root materializes — i.e. at
        # the representative step, for op-rooted groups only (leaf-rooted
        # groups are caller memory).
        is_root = group == index
        root_is_op = getattr(steps[group], "kind", "op") == "op"
        if is_root and root_is_op:
            size = bytes_of[group]
            live_bytes += size
            peak = max(peak, live_bytes)
            available = free.get(size)
            if available and group not in escaped:
                result.buffer_of[group] = available.pop()
            else:
                result.buffer_of[group] = len(buffer_sizes)
                buffer_sizes.append(size)
        for dead_group in dying_at.get(index, ()):
            if getattr(steps[dead_group], "kind", "op") != "op":
                continue
            live_bytes -= bytes_of[dead_group]
            if dead_group not in escaped:
                buffer_id = result.buffer_of[dead_group]
                free.setdefault(bytes_of[dead_group], []).append(buffer_id)

    result.buffer_sizes = buffer_sizes
    result.peak_live_bytes = peak
    result.pool_bytes = sum(buffer_sizes)
    result.naive_bytes = naive
    return result
