"""Backward-pass semantics: accumulation, graph traversal, grad modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.autograd import topological_order


class TestBackwardBasics:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_product_rule(self):
        x = Tensor([2.0], requires_grad=True)
        y = Tensor([5.0], requires_grad=True)
        (x * y).backward()
        np.testing.assert_allclose(x.grad, [5.0])
        np.testing.assert_allclose(y.grad, [2.0])

    def test_reused_tensor_accumulates(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x  # dy/dx = 2x
        y.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_broadcast_gradient_unbroadcast(self):
        x = Tensor(np.ones((1, 3)), requires_grad=True)
        y = Tensor(np.ones((4, 3)), requires_grad=True)
        (x + y).sum().backward()
        assert x.grad.shape == (1, 3)
        np.testing.assert_allclose(x.grad, [[4.0, 4.0, 4.0]])
        assert y.grad.shape == (4, 3)

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_backward_grad_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_multiple_backward_calls_accumulate_on_leaves(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None


class TestGradModes:
    def test_no_grad_blocks_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_enable_grad_inside_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            with nn.enable_grad():
                y = x * 2
        assert y.requires_grad

    def test_no_grad_restores_state_on_exception(self):
        with pytest.raises(RuntimeError):
            with nn.no_grad():
                raise RuntimeError("boom")
        assert nn.is_grad_enabled()


class TestTopologicalOrder:
    def test_order_ends_at_root_reversed(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2
        z = y + 1
        order = topological_order(z)
        assert order[0] is z
        assert any(node is x for node in order)
        # every parent appears after its child (reverse-topological)
        assert order.index(y) > 0

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([0.1], requires_grad=True)
        y = x
        for _ in range(3000):  # would overflow Python recursion otherwise
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph_counts_paths(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a + b).backward()
        np.testing.assert_allclose(x.grad, [5.0])


class TestCompositeGradients:
    def test_mean_of_square(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (x * x).mean().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data / 3)

    def test_max_routes_gradient_to_argmax(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_ties_share_gradient(self):
        x = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_getitem_scatters_gradient(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 1, 0, 0])

    def test_concat_routes_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = nn.concatenate([a, b])
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_stack_routes_gradient(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        nn.stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [1.0])
