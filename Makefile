# Developer entry points.  The tier-1 gate is `make check`: the repository
# linter must be clean and the full test suite must pass.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test check-model help

check: lint test

lint:
	$(PYTHON) -m repro.analysis.lint

test:
	$(PYTHON) -m pytest -x -q

check-model:
	$(PYTHON) -m repro check-model

help:
	@echo "make check       - lint + full test suite (tier-1 gate)"
	@echo "make lint        - repo linter (repro.analysis.lint)"
	@echo "make test        - pytest"
	@echo "make check-model - static MACE shape/dtype contract check"
