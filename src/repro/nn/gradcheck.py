"""Numerical gradient checking used by the property-based test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        lower = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-5, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Compare autograd gradients of ``sum(fn(*inputs))`` to finite differences.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True on
    success so it can sit inside ``assert gradcheck(...)``.
    """
    for tensor_input in inputs:
        tensor_input.grad = None
    output = fn(*inputs)
    output.sum().backward()
    for index, tensor_input in enumerate(inputs):
        if not tensor_input.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, index, eps=eps)
        actual = tensor_input.grad
        if actual is None:
            raise AssertionError(f"input {index} received no gradient")
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs error {worst:.3e}"
            )
    return True
