"""Detection metrics: precision / recall / F1 with point adjustment.

The point-adjust protocol (OmniAnomaly, and used by every baseline the
paper compares against, including TranAD and DCdetector) treats a contiguous
ground-truth anomaly segment as detected if *any* of its points is flagged;
all points of the segment then count as true positives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfusionCounts",
    "DetectionMetrics",
    "label_segments",
    "point_adjust",
    "confusion_counts",
    "detection_metrics",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw TP/FP/FN/TN counts at a fixed threshold."""

    tp: int
    fp: int
    fn: int
    tn: int


@dataclass(frozen=True)
class DetectionMetrics:
    """Precision / recall / F1 triple (paper Eq. 12-14)."""

    precision: float
    recall: float
    f1: float

    def as_row(self) -> tuple:
        return (self.precision, self.recall, self.f1)

    @classmethod
    def from_counts(cls, counts: ConfusionCounts) -> "DetectionMetrics":
        precision = counts.tp / max(counts.tp + counts.fp, 1)
        recall = counts.tp / max(counts.tp + counts.fn, 1)
        if precision + recall == 0:
            return cls(0.0, 0.0, 0.0)
        f1 = 2 * precision * recall / (precision + recall)
        return cls(precision, recall, f1)


def label_segments(labels: np.ndarray) -> list:
    """Contiguous ``[start, stop)`` runs of positive labels."""
    labels = np.asarray(labels).astype(bool)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    padded = np.concatenate([[False], labels, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    return [(int(changes[i]), int(changes[i + 1])) for i in range(0, changes.size, 2)]


def point_adjust(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Apply segment-level adjustment to point predictions.

    Any hit inside a true segment marks the whole segment as detected.
    Predictions outside true segments are left untouched (they become false
    positives if set).
    """
    predictions = np.asarray(predictions).astype(bool).copy()
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must share shape")
    for start, stop in label_segments(labels):
        if predictions[start:stop].any():
            predictions[start:stop] = True
    return predictions


def confusion_counts(predictions: np.ndarray, labels: np.ndarray) -> ConfusionCounts:
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    tp = int(np.sum(predictions & labels))
    fp = int(np.sum(predictions & ~labels))
    fn = int(np.sum(~predictions & labels))
    tn = int(np.sum(~predictions & ~labels))
    return ConfusionCounts(tp, fp, fn, tn)


def detection_metrics(scores: np.ndarray, labels: np.ndarray, threshold: float,
                      adjust: bool = True) -> DetectionMetrics:
    """Threshold scores, optionally point-adjust, and compute P/R/F1."""
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must share shape")
    predictions = scores > threshold
    if adjust:
        predictions = point_adjust(predictions, labels)
    return DetectionMetrics.from_counts(confusion_counts(predictions, labels))
