"""Shared fixtures for the runtime suite.

Fitting MACE is the slow part; the fitted detector is session-scoped and
treated as read-only by every test that scores with it.
"""

import numpy as np
import pytest

from repro.core import MaceConfig, MaceDetector
from repro.data import load_dataset


def fast_config(**overrides):
    defaults = dict(window=40, num_bases=6, channels=4, epochs=2,
                    train_stride=8, gamma_time=5, gamma_freq=5,
                    kernel_freq=4, kernel_time=3)
    defaults.update(overrides)
    return MaceConfig(**defaults)


@pytest.fixture(scope="session")
def runtime_dataset():
    return load_dataset("smd", num_services=2, train_length=256,
                        test_length=256, seed=5)


@pytest.fixture(scope="session")
def fitted_detector(runtime_dataset):
    detector = MaceDetector(fast_config())
    return detector.fit([s.service_id for s in runtime_dataset],
                        [s.train for s in runtime_dataset])
