"""Tape-to-plan compilation: rewrites, OPT4xx findings, and the verifier."""

import numpy as np
import pytest

from repro.analysis.plan import (
    ExecutionPlan,
    PlanVerificationError,
    bitwise_equal,
    build_plan,
    execute_graph_plan,
    verify_plan,
)
from repro.analysis.alias import MemCoverageError
from repro.analysis.trace import trace
from repro.nn.tensor import Tensor


def _traced(fn, *inputs):
    return trace(fn, inputs=inputs)


def _rules(findings):
    return [f.rule for f in findings]


def _ops(plan):
    return [s.op for s in plan.steps if s.kind == "op"]


class TestTransposeRewrites:
    def test_inverse_pair_cancels(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        graph = _traced(
            lambda: (x.transpose((1, 0)).transpose((1, 0)) * 2.0).sum(), x)
        plan, findings = build_plan(graph)
        assert "transpose" not in _ops(plan)
        kinds = [r.kind for r in plan.rewrites]
        assert "fuse-transpose-pair" in kinds
        assert "drop-identity-transpose" in kinds
        assert "OPT401" in _rules(findings)
        outs = execute_graph_plan(plan, graph)
        assert bitwise_equal(outs[0], graph.concrete(graph.outputs[0]))

    def test_noninverse_pair_fuses_to_one(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4))
        graph = _traced(
            lambda: (x.transpose((1, 2, 0)).transpose((1, 2, 0)) + 0.0).sum(),
            x)
        plan, _ = build_plan(graph)
        assert _ops(plan).count("transpose") == 1
        fused = next(s for s in plan.steps
                     if s.kind == "op" and s.op == "transpose")
        np.testing.assert_array_equal(
            np.asarray(graph.concrete(fused.origin)),
            execute_graph_plan(plan, graph, return_all=True)[fused.index])

    def test_identity_transpose_dropped(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: (x.transpose((0, 1)) * 1.5).sum(), x)
        plan, _ = build_plan(graph)
        assert "transpose" not in _ops(plan)

    def test_triple_chain_fuses_fully(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4))

        def fn():
            y = x.transpose((2, 1, 0)).transpose((1, 0, 2)).transpose((0, 2, 1))
            return (y * 1.0).sum()

        graph = _traced(fn, x)
        plan, _ = build_plan(graph)
        assert _ops(plan).count("transpose") <= 1
        outs = execute_graph_plan(plan, graph)
        assert bitwise_equal(outs[0], graph.concrete(graph.outputs[0]))


class TestReshapeRewrites:
    def test_pair_over_contiguous_source_fuses(self):
        x = Tensor(np.ones((2, 3, 4)))

        def fn():
            fresh = x.tanh()           # freshly allocated -> contiguous
            return fresh.reshape((6, 4)).reshape((24,)).sum()

        graph = _traced(fn, x)
        plan, findings = build_plan(graph)
        assert _ops(plan).count("reshape") == 1
        assert any(r.kind == "fuse-reshape-pair" for r in plan.rewrites)
        outs = execute_graph_plan(plan, graph)
        assert bitwise_equal(outs[0], graph.concrete(graph.outputs[0]))

    def test_pair_over_leaf_not_fused(self):
        # A leaf's strides are caller-controlled, so the contiguity proof
        # must fail and both reshapes survive.
        x = Tensor(np.ones((2, 3, 4)))
        graph = _traced(lambda: x.reshape((6, 4)).reshape((24,)).sum(), x)
        plan, _ = build_plan(graph)
        assert _ops(plan).count("reshape") == 2
        assert not any("reshape" in r.kind for r in plan.rewrites)

    def test_identity_reshape_over_fresh_result_dropped(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: x.tanh().reshape((2, 3)).sum(), x)
        plan, _ = build_plan(graph)
        assert "reshape" not in _ops(plan)

    def test_identity_reshape_over_leaf_kept(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: x.reshape((2, 3)).sum(), x)
        plan, _ = build_plan(graph)
        assert "reshape" in _ops(plan)

    def test_reshape_of_transpose_is_advisory_only(self):
        # The MACE hot spot: reshape of a transpose view forces a copy;
        # the op-space planner must NOT rewrite it (einsum territory) but
        # must surface it as OPT401.
        x = Tensor(np.ones((2, 3, 4)))
        graph = _traced(
            lambda: x.transpose((0, 2, 1)).reshape((8, 3)).sum(), x)
        plan, findings = build_plan(graph)
        assert "transpose" in _ops(plan) and "reshape" in _ops(plan)
        advisory = [f for f in findings if f.rule == "OPT401"]
        assert any("forces a full copy" in f.message for f in advisory)


class TestDeadCode:
    def test_dead_subgraph_dropped_and_reported(self):
        x = Tensor(np.ones((2, 3)))

        def fn():
            live = x.tanh()
            dead = (x * 3.0).exp()      # never reaches the output
            return live.sum()

        graph = _traced(fn, x)
        plan, findings = build_plan(graph)
        assert "exp" not in _ops(plan)
        assert "OPT402" in _rules(findings)
        assert any(r.kind == "drop-dead-subgraph" for r in plan.rewrites)

    def test_all_live_graph_reports_nothing(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: x.tanh().sum(), x)
        _, findings = build_plan(graph)
        assert "OPT402" not in _rules(findings)


class TestAdvisoryFindings:
    def test_elementwise_chain_reported(self):
        x = Tensor(np.ones((4, 4)))
        graph = _traced(lambda: x.tanh().sigmoid().relu().sum(), x)
        _, findings = build_plan(graph)
        chains = [f for f in findings if f.rule == "OPT403"]
        assert chains and "chain of 3" in chains[0].message

    def test_single_elementwise_op_not_a_chain(self):
        x = Tensor(np.ones((4, 4)))
        graph = _traced(lambda: x.tanh().sum(), x)
        _, findings = build_plan(graph)
        assert "OPT403" not in _rules(findings)

    def test_long_lived_workspace_reported(self):
        x = Tensor(np.ones((4, 4)))

        def fn():
            early = x.tanh()
            y = x
            for _ in range(20):       # > REMAT_SPAN steps of filler
                y = y.sigmoid()
            return (y + early).sum()

        graph = _traced(fn, x)
        _, findings = build_plan(graph)
        remat = [f for f in findings if f.rule == "OPT404"]
        assert any(f.op == "tanh" for f in remat)

    def test_large_const_leaf_reported(self):
        basis = Tensor(np.ones((16, 16)))   # const leaf, 256 elements
        x = Tensor(np.ones((16, 16)))
        graph = _traced(lambda: (x @ basis).sum(), x)
        _, findings = build_plan(graph)
        cacheable = [f for f in findings if f.rule == "OPT405"]
        assert any("constant leaf" in f.message for f in cacheable)

    def test_constant_foldable_frontier_reported(self):
        basis = Tensor(np.ones((16, 16)))
        x = Tensor(np.ones((16, 16)))
        # basis.abs() depends only on a const; its consumer mixes in input.
        graph = _traced(lambda: (x @ basis.abs()).sum(), x)
        _, findings = build_plan(graph)
        cacheable = [f for f in findings if f.rule == "OPT405"]
        assert any(f.op == "abs" for f in cacheable)

    def test_small_constants_ignored(self):
        tiny = Tensor(np.ones((2, 2)))      # 4 elements < threshold
        x = Tensor(np.ones((2, 2)))
        graph = _traced(lambda: (x * tiny).sum(), x)
        _, findings = build_plan(graph)
        assert "OPT405" not in _rules(findings)


class TestVerifier:
    def _plan(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(
            lambda: (x.transpose((1, 0)).transpose((1, 0)) * 2.0).sum(), x)
        plan, _ = build_plan(graph)
        return graph, plan

    def test_built_plans_carry_a_proof(self):
        graph, plan = self._plan()
        assert plan.proof is not None
        assert plan.proof.rewrites_covered == len(plan.rewrites)
        assert plan.proof.abstract_checked == len(plan.steps)

    def test_tampered_shape_refused(self):
        graph, plan = self._plan()
        victim = next(s for s in plan.steps if s.op == "mul")
        victim.shape = (999,)
        with pytest.raises(PlanVerificationError):
            verify_plan(graph, plan)

    def test_tampered_parent_refused(self):
        # Rewiring sum past the clip reads the unclipped (wider) input;
        # the plan's abstract value widens and the proof must refuse it.
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: x.clip(-1.0, 1.0).sum(), x)
        plan, _ = build_plan(graph)
        victim = next(s for s in plan.steps if s.op == "sum")
        leaf = next(s.index for s in plan.steps if s.kind == "input")
        victim.parents = (leaf,)
        with pytest.raises(PlanVerificationError, match="diverge"):
            verify_plan(graph, plan)

    def test_tampered_attrs_refused(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: x.clip(-1.0, 1.0).sum(), x)
        plan, _ = build_plan(graph)
        clip = next(s for s in plan.steps if s.op == "clip")
        clip.attrs = {"low": -100.0, "high": 100.0}   # widens the interval
        with pytest.raises(PlanVerificationError, match="diverge"):
            verify_plan(graph, plan)

    def test_out_of_order_refused(self):
        graph, plan = self._plan()
        plan.steps[-1], plan.steps[-2] = plan.steps[-2], plan.steps[-1]
        with pytest.raises(PlanVerificationError):
            verify_plan(graph, plan)

    def test_refinement_is_legal(self):
        # x - x triggers the tight same-input rule only after the rewrite
        # merges the transpose pair back into x; the plan's value [0, 0]
        # refines the graph's wider interval and must be accepted.
        x = Tensor(np.ones((2, 2)))
        graph = _traced(
            lambda: (x - x.transpose((1, 0)).transpose((1, 0))).sum(), x)
        plan, _ = build_plan(graph)     # would raise if containment failed
        assert plan.proof is not None
        outs = execute_graph_plan(plan, graph)
        assert bitwise_equal(outs[0], graph.concrete(graph.outputs[0]))


class TestMemCoverageGate:
    def test_unregistered_op_refused(self):
        x = Tensor(np.ones((2, 2)))
        graph = _traced(lambda: x.tanh().sum(), x)
        next(n for n in graph.nodes if n.op == "tanh").op = "mystery_op"
        with pytest.raises(MemCoverageError, match="mystery_op"):
            build_plan(graph)


class TestPlanStats:
    def test_stats_shape(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: x.tanh().sum(), x)
        plan, _ = build_plan(graph)
        stats = plan.stats()
        for key in ("source_nodes", "steps", "ops", "rewrites", "verified",
                    "pool_bytes", "peak_live_bytes", "naive_bytes"):
            assert key in stats
        assert stats["verified"] is True
        assert stats["source_nodes"] == len(graph.nodes)
