"""Training-set contamination: robustness studies.

The unsupervised TSAD convention assumes clean training data, but real
histories contain unlabelled incidents.  ``contaminate_training`` injects
anomalies into a copy of a training split so the robustness of a detector
to contaminated training data can be measured (the concern motivating e.g.
the paper's citation [26] and LARA [2]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.data.anomalies import (
    AnomalyKind,
    InjectionResult,
    default_mix,
    inject_anomalies,
)
from repro.data.generators import ServiceData

__all__ = ["ContaminatedService", "contaminate_training"]


@dataclass(frozen=True)
class ContaminatedService:
    """A service whose *training* split now carries unlabelled anomalies."""

    service: ServiceData
    train: np.ndarray
    train_labels: np.ndarray       # ground truth (hidden from detectors)

    @property
    def contamination_ratio(self) -> float:
        return float(self.train_labels.mean())


def contaminate_training(service: ServiceData, ratio: float,
                         mix: Dict[AnomalyKind, float] | None = None,
                         rng: np.random.Generator | None = None
                         ) -> ContaminatedService:
    """Inject anomalies into a copy of ``service.train``.

    The returned object keeps the true contamination labels so experiments
    can report results as a function of the (hidden) contamination level.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    mix = mix if mix is not None else default_mix()
    result: InjectionResult = inject_anomalies(service.train, ratio, mix,
                                               rng=rng)
    return ContaminatedService(
        service=service,
        train=result.series,
        train_labels=result.labels,
    )
