"""The paper's closed-form results: unit values + Monte-Carlo consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import (
    corollary1_condition,
    corollary1_gap_under_shift,
    double_factorial,
    empirical_latent_gap,
    kl_reconstruction_error,
    theorem1_upper_bound,
    theorem2_gap,
)

settings.register_profile("fast", max_examples=20, deadline=None)
settings.load_profile("fast")


class TestDoubleFactorial:
    @pytest.mark.parametrize("n,expected", [(-1, 1), (0, 1), (1, 1), (2, 2),
                                            (5, 15), (6, 48), (7, 105)])
    def test_values(self, n, expected):
        assert double_factorial(n) == expected

    def test_rejects_below_minus_one(self):
        with pytest.raises(ValueError):
            double_factorial(-2)

    @given(n=st.integers(2, 20))
    def test_recurrence(self, n):
        assert double_factorial(n) == n * double_factorial(n - 2)


class TestTheorem1:
    def test_rejects_even_or_small_gamma(self):
        ones = np.ones(3)
        with pytest.raises(ValueError):
            theorem1_upper_bound(ones, ones, ones, 4)
        with pytest.raises(ValueError):
            theorem1_upper_bound(ones, ones, ones, 1)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            theorem1_upper_bound(np.ones(3), np.ones(2), np.ones(3), 3)

    def test_bound_increases_with_variance(self):
        mu = np.full(5, 1.0)
        alpha = np.full(5, 0.2)
        low = theorem1_upper_bound(mu, np.full(5, 0.2), alpha, 5)
        high = theorem1_upper_bound(mu, np.full(5, 1.5), alpha, 5)
        assert high > low

    @given(seed=st.integers(0, 500), gamma=st.sampled_from([3, 5]))
    def test_bound_dominates_monte_carlo_gap(self, seed, gamma):
        """The empirical Definition-1 gap never exceeds the Theorem-1 bound.

        Amplitudes are positive Gaussians (means well above 0 so the
        positivity assumption of the proof holds).
        """
        rng = np.random.default_rng(seed)
        n = 4
        mu = rng.uniform(2.0, 4.0, size=n)
        nu = rng.uniform(0.05, 0.3, size=n)
        alpha = np.full(n, 1.0 / n)
        samples = rng.normal(mu, nu, size=(4000, n))
        empirical = empirical_latent_gap(samples, alpha, gamma)
        bound = theorem1_upper_bound(mu, nu, alpha, gamma)
        assert empirical <= bound + 1e-6


class TestTheorem2:
    def test_kl_error_formula(self):
        q = np.array([0.5, 0.3, 0.2])
        np.testing.assert_allclose(kl_reconstruction_error(q, 2), -np.log(0.8))

    def test_kl_error_zero_with_full_spectrum(self):
        q = np.array([0.5, 0.3, 0.2])
        assert kl_reconstruction_error(q, 3) == pytest.approx(0.0, abs=1e-12)

    def test_kl_error_validation(self):
        with pytest.raises(ValueError):
            kl_reconstruction_error(np.array([0.5, 0.2]), 1)  # not normalised
        with pytest.raises(ValueError):
            kl_reconstruction_error(np.array([0.5, 0.5]), 3)

    def test_gap_is_difference_of_kl_errors(self):
        q_normal = np.array([0.6, 0.25, 0.1, 0.05])
        q_anomaly = np.array([0.3, 0.3, 0.2, 0.2])
        k = 2
        gap = theorem2_gap(q_normal, q_anomaly, k)
        direct = (kl_reconstruction_error(q_anomaly, k)
                  - kl_reconstruction_error(q_normal, k))
        np.testing.assert_allclose(gap, direct, atol=1e-12)

    def test_gap_positive_when_normal_energy_concentrated(self):
        q_normal = np.array([0.7, 0.2, 0.05, 0.05])
        q_anomaly = np.array([0.25, 0.25, 0.25, 0.25])
        assert theorem2_gap(q_normal, q_anomaly, 2) > 0

    def test_gap_zero_with_full_spectrum(self):
        """Using all n bases kills the gap — the headline claim for k < n."""
        rng = np.random.default_rng(3)
        q_normal = rng.dirichlet(np.ones(6))
        q_anomaly = rng.dirichlet(np.ones(6))
        np.testing.assert_allclose(theorem2_gap(q_normal, q_anomaly, 6), 0.0,
                                   atol=1e-12)

    @given(seed=st.integers(0, 1000), k=st.integers(1, 5))
    def test_gap_matches_shift_model(self, seed, k):
        """Under Assumption 1 (uniform positive shift), Corollary 1's closed
        form agrees with Theorem 2 computed on the shifted spectrum."""
        rng = np.random.default_rng(seed)
        n = 6
        amp_normal = np.sort(rng.uniform(0.5, 3.0, size=n))[::-1]
        shift = 0.4
        amp_anomaly = amp_normal + shift
        q_normal = amp_normal / amp_normal.sum()
        q_anomaly = amp_anomaly / amp_anomaly.sum()
        gap = theorem2_gap(q_normal, q_anomaly, k)
        closed = corollary1_gap_under_shift(q_normal, k, amp_normal.sum(), shift)
        np.testing.assert_allclose(gap, closed, atol=1e-10)


class TestCorollary1:
    def test_condition_true_for_sorted_concentrated(self):
        q = np.array([0.5, 0.3, 0.1, 0.1])
        assert corollary1_condition(q, 2)

    def test_condition_false_for_uniform(self):
        q = np.full(5, 0.2)
        assert not corollary1_condition(q, 2)

    @given(seed=st.integers(0, 1000), k=st.integers(1, 5))
    def test_condition_implies_positive_gap(self, seed, k):
        rng = np.random.default_rng(seed)
        n = 6
        q = np.sort(rng.dirichlet(np.ones(n)))[::-1]
        if k >= n:
            return
        gap = corollary1_gap_under_shift(q, k, total_energy=10.0, shift_mean=0.5)
        if corollary1_condition(q, k):
            assert gap > 0
        else:
            assert gap <= 1e-12

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            corollary1_gap_under_shift(np.array([0.0, 1.0]), 1, 10.0, 0.5)
