"""Typed, idempotent, timeout-guarded remediation actions.

Every remedy the controller can apply is an :class:`Action` subclass with
three hard obligations, enforced at registration time (and statically by
lint rule REP111):

* ``timeout_ticks`` — a positive declared budget; the
  :class:`ActionRunner` forcibly times out any action still pending past
  it and the controller rolls back and escalates.  No action may block
  the control loop indefinitely.
* ``idempotent = True`` — re-running the action from the same inputs must
  reach the same state, so a retry after a timeout (the runner cannot
  know whether the first attempt half-applied) is always safe.
* ``rollback`` — restore the pre-action state captured in ``start``; the
  verification stage calls it when recovery does not hold.

Actions execute in *steps* against the update-tick clock, never wall
time: ``start`` does the work (or kicks it off) and ``poll`` reports
completion on subsequent ticks.  Most remedies finish inside ``start``;
the split exists so slow remedies — and the drill's injected
``action_hang`` faults — exercise the same timeout machinery production
would need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

import numpy as np

from repro.obs.events import emit
from repro.obs.metrics import get_registry
from repro.runtime.faults import ActionFault

__all__ = ["ActionOutcome", "ActionContext", "Action",
           "ActionRegistrationError", "register_action", "create_action",
           "registered_actions", "RecalibrateSanitizer", "ResetBreaker",
           "HotSwapDetector", "QuarantineAndPage", "RunningAction",
           "ActionRunner"]


class ActionOutcome(enum.Enum):
    OK = "ok"
    PENDING = "pending"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


@dataclass
class ActionContext:
    """Everything an action may touch, handed to it by the controller.

    ``history`` is the service's recent *clean* observation history (rows
    the sanitizer did not have to repair) — the calibration data for
    recalibration and re-characterization remedies.  ``retrain`` is the
    pluggable backend for :class:`HotSwapDetector`; the default re-runs
    ``detector.prepare_service`` through
    :meth:`ServingRuntime.reprepare_service`, a production deployment can
    swap in a :class:`~repro.runtime.orchestrator.FleetOrchestrator`
    group retrain.
    """

    runtime: object                  # ServingRuntime (untyped: no cycle)
    service_id: str
    tick: int
    history: Optional[np.ndarray] = None
    retrain: Optional[Callable[[str, Optional[np.ndarray]], None]] = None


class Action:
    """Base remediation action (see the module docstring for the rules)."""

    name: str = "action"
    timeout_ticks: Optional[int] = None
    idempotent: bool = False

    def start(self, ctx: ActionContext) -> ActionOutcome:
        """Apply (or begin applying) the remedy."""
        raise NotImplementedError

    def poll(self, ctx: ActionContext) -> ActionOutcome:
        """Completion check for actions still pending after ``start``."""
        return ActionOutcome.OK

    def rollback(self, ctx: ActionContext) -> None:
        """Restore the pre-``start`` state (best effort, never raises)."""


class ActionRegistrationError(ValueError):
    """An action class violates the timeout/idempotency obligations."""


_REGISTRY: Dict[str, Type[Action]] = {}


def register_action(cls: Type[Action]) -> Type[Action]:
    """Class decorator: validate the obligations and register the action."""
    timeout = cls.timeout_ticks
    if not isinstance(timeout, int) or isinstance(timeout, bool) \
            or timeout < 1:
        raise ActionRegistrationError(
            f"{cls.__name__} must declare a positive integer timeout_ticks "
            f"(got {timeout!r}); unbounded actions wedge the control loop"
        )
    if cls.idempotent is not True:
        raise ActionRegistrationError(
            f"{cls.__name__} must declare idempotent = True; the runner "
            "retries timed-out actions and cannot prove the first attempt "
            "did not half-apply"
        )
    if not cls.name or cls.name == Action.name:
        raise ActionRegistrationError(
            f"{cls.__name__} must declare a unique action name"
        )
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ActionRegistrationError(
            f"action name {cls.name!r} already registered by "
            f"{_REGISTRY[cls.name].__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def create_action(name: str) -> Action:
    """Instantiate a registered action by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown action {name!r}; "
                       f"registered: {sorted(_REGISTRY)}")
    return _REGISTRY[name]()


def registered_actions() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


@register_action
class RecalibrateSanitizer(Action):
    """Refit the service's sanitizer from recent clean history.

    Root cause: data-quality faults.  The sanitizer's medians/clip bands
    were calibrated on stale history; refreshing them from the most
    recent clean rows stops over-aggressive imputation/clipping from
    starving the model of real signal.
    """

    name = "recalibrate_sanitizer"
    timeout_ticks = 4
    idempotent = True

    def __init__(self):
        self._previous = None

    def start(self, ctx: ActionContext) -> ActionOutcome:
        if ctx.history is None or ctx.history.shape[0] < 2:
            return ActionOutcome.FAILED
        self._previous = ctx.runtime.recalibrate_sanitizer(
            ctx.service_id, ctx.history)
        ctx.runtime.reset_breaker(ctx.service_id)
        return ActionOutcome.OK

    def rollback(self, ctx: ActionContext) -> None:
        if self._previous is not None:
            ctx.runtime.swap_sanitizer(ctx.service_id, self._previous)


@register_action
class ResetBreaker(Action):
    """Collapse the probe backoff and force an immediate re-probe.

    Root cause: transient faults and anomaly storms.  The model path is
    believed healthy (or the world is genuinely anomalous); the remedy is
    to stop waiting out a possibly maxed-out backoff window and verify.
    """

    name = "reset_breaker"
    timeout_ticks = 4
    idempotent = True

    def start(self, ctx: ActionContext) -> ActionOutcome:
        ctx.runtime.reset_breaker(ctx.service_id)
        return ActionOutcome.OK

    def rollback(self, ctx: ActionContext) -> None:
        # Resetting a backoff carries no state worth restoring: the
        # breaker re-derives its schedule from subsequent probe outcomes.
        return None


@register_action
class HotSwapDetector(Action):
    """Re-characterize the service's model from recent clean history.

    Root cause: model staleness.  Runs the configured retrain backend
    (default: :meth:`ServingRuntime.reprepare_service`, which refits the
    per-service frequency-subspace pattern memory and the fallback
    reference spectrum) and then forces a re-probe so the refreshed path
    is verified immediately.
    """

    name = "hot_swap_detector"
    timeout_ticks = 16
    idempotent = True

    def start(self, ctx: ActionContext) -> ActionOutcome:
        try:
            if ctx.retrain is not None:
                ctx.retrain(ctx.service_id, ctx.history)
            else:
                if ctx.history is None or ctx.history.shape[0] < 2:
                    return ActionOutcome.FAILED
                ctx.runtime.reprepare_service(ctx.service_id, ctx.history)
        except Exception:   # a broken retrain backend must not crash the loop
            return ActionOutcome.FAILED
        ctx.runtime.reset_breaker(ctx.service_id)
        return ActionOutcome.OK

    def rollback(self, ctx: ActionContext) -> None:
        # prepare_service is idempotent over its input history, so the
        # swap itself needs no undo; re-running the previous
        # characterization would require the stale history we no longer
        # trust.  Verification failure escalates instead.
        return None


@register_action
class QuarantineAndPage(Action):
    """Terminal escalation: pin the fallback path and page a human."""

    name = "quarantine_and_page"
    timeout_ticks = 2
    idempotent = True
    terminal = True

    def start(self, ctx: ActionContext) -> ActionOutcome:
        ctx.runtime.quarantine(ctx.service_id)
        emit("page", service=ctx.service_id, tick=ctx.tick,
             reason="remediation escalated to terminal rung")
        get_registry().counter("remediation.pages",
                               service=ctx.service_id).inc()
        return ActionOutcome.OK


@dataclass
class RunningAction:
    """Runner bookkeeping for one in-flight action."""

    action: Action
    ctx: ActionContext
    started_tick: int
    hung: bool = False       # injected action_hang fault is pinning it


class ActionRunner:
    """Executes actions with tick-based timeout guards and fault hooks.

    ``fault_plan`` (chaos testing only) maps service ids to
    :class:`~repro.runtime.faults.ActionFault`; ``action_fail`` forces
    the next launched action for that service to report FAILED without
    executing, ``action_hang`` pins it PENDING until the declared
    ``timeout_ticks`` expire.  ``recovery_relapse`` is *not* consumed
    here — it fires during verification and is applied by the drill
    harness.
    """

    def __init__(self, fault_plan: Optional[Dict[str, ActionFault]] = None):
        self.fault_plan = dict(fault_plan or {})
        self._fired: Dict[str, int] = {}
        self._running: Dict[str, RunningAction] = {}
        self.launched = 0
        self.timed_out = 0

    def in_flight(self, service_id: str) -> bool:
        return service_id in self._running

    def _draw_fault(self, service_id: str) -> Optional[str]:
        fault = self.fault_plan.get(service_id)
        if fault is None or fault.kind == "recovery_relapse":
            return None
        if not fault.repeat and self._fired.get(service_id, 0) >= 1:
            return None
        self._fired[service_id] = self._fired.get(service_id, 0) + 1
        return fault.kind

    def launch(self, action: Action, ctx: ActionContext
               ) -> Tuple[ActionOutcome, Optional[RunningAction]]:
        """Start an action; returns its immediate outcome.

        A PENDING outcome leaves the action in flight; drive it with
        :meth:`step` each tick until it completes or times out.
        """
        if ctx.service_id in self._running:
            raise RuntimeError(
                f"service {ctx.service_id!r} already has an action in "
                "flight; one remedy at a time per service"
            )
        self.launched += 1
        fault = self._draw_fault(ctx.service_id)
        if fault == "action_fail":
            emit("action_fault", service=ctx.service_id, fault_kind=fault,
                 action=action.name, tick=ctx.tick)
            return ActionOutcome.FAILED, None
        if fault == "action_hang":
            emit("action_fault", service=ctx.service_id, fault_kind=fault,
                 action=action.name, tick=ctx.tick)
            running = RunningAction(action, ctx, ctx.tick, hung=True)
            self._running[ctx.service_id] = running
            return ActionOutcome.PENDING, running
        outcome = action.start(ctx)
        if outcome is ActionOutcome.PENDING:
            running = RunningAction(action, ctx, ctx.tick)
            self._running[ctx.service_id] = running
            return outcome, running
        return outcome, None

    def step(self, service_id: str, tick: int) -> Optional[ActionOutcome]:
        """Advance one service's in-flight action by one tick.

        Returns ``None`` when nothing is in flight, PENDING while the
        action is still inside its budget, and a terminal outcome (OK /
        FAILED / TIMED_OUT) once it leaves flight.
        """
        running = self._running.get(service_id)
        if running is None:
            return None
        budget = running.action.timeout_ticks
        if budget is not None and tick - running.started_tick >= budget:
            del self._running[service_id]
            self.timed_out += 1
            emit("action_timeout", service=service_id,
                 action=running.action.name, tick=tick,
                 started_tick=running.started_tick, budget=budget)
            return ActionOutcome.TIMED_OUT
        if running.hung:
            return ActionOutcome.PENDING
        outcome = running.action.poll(running.ctx)
        if outcome is ActionOutcome.PENDING:
            return outcome
        del self._running[service_id]
        return outcome

    def abandon(self, service_id: str) -> None:
        """Drop an in-flight action without an outcome (incident closed)."""
        self._running.pop(service_id, None)
