"""Input sanitization: imputation, clipping, gap tracking."""

import numpy as np
import pytest

from repro.runtime import SanitizationReport, Sanitizer, SanitizerConfig


@pytest.fixture
def history(rng):
    base = np.stack([np.sin(np.arange(300) / 7.0),
                     np.cos(np.arange(300) / 11.0) * 3.0], axis=1)
    return base + 0.05 * rng.normal(size=base.shape)


@pytest.fixture
def fitted(history):
    return Sanitizer().fit(history)


class TestConfig:
    def test_rejects_unknown_impute_mode(self):
        with pytest.raises(ValueError):
            SanitizerConfig(impute="zero")

    def test_rejects_non_positive_clip(self):
        with pytest.raises(ValueError):
            SanitizerConfig(clip_sigmas=0.0)


class TestImputation:
    def test_clean_observation_passes_through(self, fitted):
        observation = np.array([0.1, 2.5])
        clean, report = fitted.sanitize(observation)
        np.testing.assert_array_equal(clean, observation)
        assert not report.modified

    def test_nan_imputed_from_last_value(self, fitted):
        first, _ = fitted.sanitize(np.array([0.4, 1.0]))
        clean, report = fitted.sanitize(np.array([np.nan, 1.1]))
        assert clean[0] == first[0]          # last clean value repeated
        assert clean[1] == 1.1               # healthy feature untouched
        assert report.imputed_features == (0,)

    def test_inf_imputed(self, fitted):
        clean, report = fitted.sanitize(np.array([np.inf, -0.2]))
        assert np.isfinite(clean).all()
        assert report.imputed_features == (0,)

    def test_median_mode_uses_calibration_median(self, history):
        sanitizer = Sanitizer(SanitizerConfig(impute="median")).fit(history)
        clean, _ = sanitizer.sanitize(np.array([np.nan, 0.0]))
        assert clean[0] == pytest.approx(np.median(history[:, 0]), abs=1e-9)

    def test_missing_row_fully_imputed(self, fitted):
        clean, report = fitted.sanitize(None)
        assert np.isfinite(clean).all()
        assert report.missing_row
        assert report.imputed_features == (0, 1)

    def test_output_always_finite(self, fitted):
        clean, _ = fitted.sanitize(np.array([np.nan, np.inf]))
        assert np.isfinite(clean).all()


class TestClipping:
    def test_gross_outlier_clipped(self, fitted):
        clean, report = fitted.sanitize(np.array([1e9, 0.0]))
        assert np.isfinite(clean).all()
        assert abs(clean[0]) < 1e3
        assert report.clipped_features == (0,)

    def test_genuine_anomaly_not_clipped(self, fitted):
        # A 5-sigma excursion is a *detection target*, not transport noise.
        clean, report = fitted.sanitize(np.array([0.0, 3.0 + 5 * 0.05]))
        assert report.clipped_features == ()
        assert clean[1] == pytest.approx(3.0 + 5 * 0.05)

    def test_clipping_disabled(self, history):
        sanitizer = Sanitizer(SanitizerConfig(clip_sigmas=None)).fit(history)
        clean, report = sanitizer.sanitize(np.array([1e9, 0.0]))
        assert clean[0] == 1e9
        assert not report.clipped_features

    def test_clip_preserves_direction(self, fitted):
        low, _ = fitted.sanitize(np.array([-1e9, 0.0]))
        high, _ = fitted.sanitize(np.array([1e9, 0.0]))
        assert low[0] < 0 < high[0]


class TestGapTracking:
    def test_gap_reported_after_consecutive_imputed_rows(self, history):
        config = SanitizerConfig(max_consecutive_imputed=3)
        sanitizer = Sanitizer(config).fit(history)
        reports = [sanitizer.sanitize(None)[1] for _ in range(4)]
        assert not reports[0].gap_exceeded
        assert not reports[1].gap_exceeded
        assert reports[2].gap_exceeded
        assert reports[3].gap_exceeded

    def test_clean_row_resets_gap(self, history):
        config = SanitizerConfig(max_consecutive_imputed=3)
        sanitizer = Sanitizer(config).fit(history)
        sanitizer.sanitize(None)
        sanitizer.sanitize(None)
        sanitizer.sanitize(np.array([0.0, 3.0]))
        _, report = sanitizer.sanitize(None)
        assert not report.gap_exceeded


class TestCalibration:
    def test_unfitted_rejects(self):
        with pytest.raises(RuntimeError):
            Sanitizer().sanitize(np.zeros(2))

    def test_dirty_history_tolerated(self, history):
        history = history.copy()
        history[10:20, 0] = np.nan
        sanitizer = Sanitizer().fit(history)
        clean, _ = sanitizer.sanitize(np.array([np.nan, 0.0]))
        assert np.isfinite(clean).all()

    def test_all_nan_feature_rejected(self):
        history = np.zeros((50, 2))
        history[:, 1] = np.nan
        with pytest.raises(ValueError):
            Sanitizer().fit(history)

    def test_dead_feature_gets_nondegenerate_band(self):
        history = np.stack([np.sin(np.arange(100) / 5.0),
                            np.zeros(100)], axis=1)
        sanitizer = Sanitizer().fit(history)
        clean, report = sanitizer.sanitize(np.array([0.0, 0.0]))
        assert not report.modified  # constant value is inside its own band

    def test_feature_count_checked(self, fitted):
        with pytest.raises(ValueError):
            fitted.sanitize(np.zeros(5))


class TestReport:
    def test_default_report_unmodified(self):
        assert not SanitizationReport().modified

    def test_modified_flags(self):
        assert SanitizationReport(imputed_features=(1,)).modified
        assert SanitizationReport(clipped_features=(0,)).modified
        assert SanitizationReport(missing_row=True).modified
