"""FaultInjector: determinism, fault families, and the outage knob."""

import numpy as np
import pytest

from repro.runtime import ActionFault, FaultInjector, InjectedFault
from tests.runtime.test_serving import ScriptedDetector


def _corruption_train(seed, steps=500):
    injector = FaultInjector(seed=seed, corrupt_prob=0.1)
    observed = []
    for step in range(steps):
        row = np.array([float(step), -float(step)])
        out = injector.corrupt(row)
        # repr() so NaN compares equal to itself across the two trains.
        observed.append(None if out is None else repr(out.tolist()))
    return observed


class TestDeterminism:
    def test_same_seed_same_fault_train(self):
        assert _corruption_train(3) == _corruption_train(3)

    def test_different_seed_differs(self):
        assert _corruption_train(3) != _corruption_train(4)


class TestObservationFaults:
    def test_corruption_rate_and_counter(self):
        injector = FaultInjector(seed=0, corrupt_prob=0.1)
        for _ in range(2000):
            injector.corrupt(np.zeros(2))
        assert 120 <= injector.observations_corrupted <= 280

    def test_zero_prob_is_identity(self):
        injector = FaultInjector(seed=0, corrupt_prob=0.0)
        row = np.arange(3.0)
        assert injector.corrupt(row) is row
        assert injector.observations_corrupted == 0

    def test_kind_subset_respected(self):
        injector = FaultInjector(seed=0, corrupt_prob=1.0, kinds=("nan",))
        for _ in range(20):
            out = injector.corrupt(np.zeros(2))
            assert np.isnan(out).sum() == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption kinds"):
            FaultInjector(kinds=("nan", "meteor"))

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="corrupt_prob"):
            FaultInjector(corrupt_prob=1.5)


class TestScoringFaults:
    def _fitted(self):
        history = np.random.default_rng(0).normal(size=(100, 2))
        return ScriptedDetector().fit(["svc"], [history]), history

    def test_raise_prob_one_always_raises(self):
        detector, history = self._fitted()
        faulty = FaultInjector(seed=0, raise_prob=1.0).wrap_detector(detector)
        with pytest.raises(InjectedFault):
            faulty.score("svc", history)

    def test_nan_fault_poisons_last_score(self):
        detector, history = self._fitted()
        injector = FaultInjector(seed=0, raise_prob=0.0, nan_score_prob=1.0)
        scores = injector.wrap_detector(detector).score("svc", history)
        assert np.isnan(scores[-1])
        assert injector.scoring_faults == 1

    def test_fail_services_scripts_an_outage(self):
        detector, history = self._fitted()
        injector = FaultInjector(seed=0, raise_prob=0.0)
        faulty = injector.wrap_detector(detector)
        faulty.fail_services = {"svc"}
        with pytest.raises(InjectedFault, match="outage"):
            faulty.score("svc", history)
        faulty.fail_services = set()
        assert np.isfinite(faulty.score("svc", history)).all()
        assert injector.scoring_faults == 1


class TestStorageFaults:
    def test_truncate_file(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"x" * 1000)
        FaultInjector(seed=0).truncate_file(path, keep_fraction=0.25)
        assert path.stat().st_size == 250

    def test_bad_fraction_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FaultInjector(seed=0).truncate_file(tmp_path / "x", 1.0)


class TestActionFaultPlanning:
    """plan_action_faults mirrors plan_worker_faults: seeded and orderly."""

    def _plan(self, seed=0, rate=0.5, **kwargs):
        injector = FaultInjector(seed=seed)
        services = [f"svc-{i}" for i in range(20)]
        return injector.plan_action_faults(services, rate, **kwargs), injector

    def test_same_seed_same_plan(self):
        first, _ = self._plan(seed=7)
        second, _ = self._plan(seed=7)
        assert first == second

    def test_different_seed_differs(self):
        first, _ = self._plan(seed=7)
        second, _ = self._plan(seed=8)
        assert first != second

    def test_rate_bounds(self):
        empty, injector = self._plan(rate=0.0)
        assert empty == {}
        assert injector.action_faults_planned == 0
        full, injector = self._plan(rate=1.0)
        assert len(full) == 20
        assert injector.action_faults_planned == 20

    def test_kind_subset_respected(self):
        plan, _ = self._plan(rate=1.0, kinds=("action_hang",))
        assert {fault.kind for fault in plan.values()} == {"action_hang"}

    def test_relapse_and_repeat_forwarded(self):
        plan, _ = self._plan(rate=1.0, relapse_ticks=5, repeat=True)
        assert all(f.relapse_ticks == 5 and f.repeat for f in plan.values())

    def test_unknown_kind_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.plan_action_faults(["a"], 0.5, kinds=("explode",))
        with pytest.raises(ValueError):
            ActionFault("explode")

    def test_bad_parameters_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.plan_action_faults(["a"], 1.5)
        with pytest.raises(ValueError):
            injector.plan_action_faults(["a"], 0.5, kinds=())
        with pytest.raises(ValueError):
            ActionFault("recovery_relapse", relapse_ticks=0)


class TestNanServices:
    def test_nan_services_poisons_last_score_and_counts(self):
        injector = FaultInjector(seed=0, corrupt_prob=0.0, raise_prob=0.0)
        history = np.random.default_rng(0).normal(size=(100, 2))
        detector = injector.wrap_detector(
            ScriptedDetector().fit(["svc"], [history]))
        detector.nan_services.add("svc")
        scores = detector.score("svc", history)
        assert np.isnan(scores[-1])
        assert np.isfinite(scores[:-1]).all()
        assert injector.scoring_faults == 1
        detector.nan_services.discard("svc")
        assert np.isfinite(detector.score("svc", history)).all()
