"""Metrics and the point-adjust protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    DetectionMetrics,
    confusion_counts,
    detection_metrics,
    label_segments,
    point_adjust,
)

settings.register_profile("fast", max_examples=25, deadline=None)
settings.load_profile("fast")


class TestLabelSegments:
    def test_basic_runs(self):
        labels = np.array([0, 1, 1, 0, 0, 1, 0, 1, 1, 1])
        assert label_segments(labels) == [(1, 3), (5, 6), (7, 10)]

    def test_empty_and_full(self):
        assert label_segments(np.zeros(5)) == []
        assert label_segments(np.ones(4)) == [(0, 4)]

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            label_segments(np.zeros((2, 2)))

    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    def test_segments_cover_exactly_positive_labels(self, bits):
        labels = np.array(bits, dtype=bool)
        rebuilt = np.zeros_like(labels)
        for start, stop in label_segments(labels):
            assert stop > start
            rebuilt[start:stop] = True
        np.testing.assert_array_equal(rebuilt, labels)


class TestPointAdjust:
    def test_one_hit_marks_whole_segment(self):
        labels = np.array([0, 1, 1, 1, 0], dtype=bool)
        preds = np.array([0, 0, 1, 0, 0], dtype=bool)
        np.testing.assert_array_equal(point_adjust(preds, labels),
                                      [0, 1, 1, 1, 0])

    def test_missed_segment_stays_missed(self):
        labels = np.array([0, 1, 1, 0], dtype=bool)
        preds = np.zeros(4, dtype=bool)
        np.testing.assert_array_equal(point_adjust(preds, labels), preds)

    def test_false_positives_untouched(self):
        labels = np.zeros(4, dtype=bool)
        preds = np.array([1, 0, 0, 1], dtype=bool)
        np.testing.assert_array_equal(point_adjust(preds, labels), preds)

    def test_input_not_mutated(self):
        labels = np.array([1, 1], dtype=bool)
        preds = np.array([1, 0], dtype=bool)
        point_adjust(preds, labels)
        np.testing.assert_array_equal(preds, [1, 0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            point_adjust(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1,
                    max_size=50))
    def test_adjustment_never_decreases_predictions(self, pairs):
        preds = np.array([p for p, _ in pairs], dtype=bool)
        labels = np.array([l for _, l in pairs], dtype=bool)
        adjusted = point_adjust(preds, labels)
        assert np.all(adjusted | ~preds)  # adjusted >= preds pointwise


class TestConfusionAndMetrics:
    def test_counts(self):
        preds = np.array([1, 1, 0, 0], dtype=bool)
        labels = np.array([1, 0, 1, 0], dtype=bool)
        counts = confusion_counts(preds, labels)
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (1, 1, 1, 1)

    def test_metric_formulas(self):
        from repro.eval import ConfusionCounts

        metrics = DetectionMetrics.from_counts(ConfusionCounts(8, 2, 2, 88))
        assert metrics.precision == pytest.approx(0.8)
        assert metrics.recall == pytest.approx(0.8)
        assert metrics.f1 == pytest.approx(0.8)

    def test_zero_division_guarded(self):
        from repro.eval import ConfusionCounts

        metrics = DetectionMetrics.from_counts(ConfusionCounts(0, 0, 0, 10))
        assert metrics.f1 == 0.0

    def test_detection_metrics_with_adjustment(self):
        scores = np.array([0.1, 0.2, 0.9, 0.2, 0.1])
        labels = np.array([0, 1, 1, 1, 0])
        adjusted = detection_metrics(scores, labels, threshold=0.5)
        raw = detection_metrics(scores, labels, threshold=0.5, adjust=False)
        assert adjusted.recall == 1.0
        assert raw.recall == pytest.approx(1 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            detection_metrics(np.zeros(3), np.zeros(4), 0.5)

    @given(seed=st.integers(0, 500))
    def test_f1_between_precision_and_recall_extremes(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(50)
        labels = rng.random(50) > 0.7
        if not labels.any():
            return
        metrics = detection_metrics(scores, labels, 0.5)
        assert 0.0 <= metrics.f1 <= 1.0
        assert metrics.f1 <= max(metrics.precision, metrics.recall) + 1e-12
