"""Consistent-hash shard map: which worker owns which service.

The gateway pins every service id to exactly one scoring worker so that
per-service state (ring buffer, SPOT threshold, sequence high-water) has
a single writer.  A plain ``hash(service) % workers`` map would reshuffle
almost every service whenever the pool grows or shrinks; the classic
consistent-hash ring bounds that churn to ~``K/N`` keys per membership
change, which is what keeps worker failover cheap: only the dead worker's
services move.

Hashing uses ``blake2b`` over explicit byte strings — never Python's
builtin ``hash``, whose per-process salt (PYTHONHASHSEED) would give
every run a different shard map.  Equal ``(workers, replicas, seed)``
therefore always produce the identical ring, which the chaos suite's
bitwise-recovery checks rely on.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

__all__ = ["ConsistentHashRing"]


def _point(seed: int, label: str) -> int:
    """Deterministic 64-bit ring position for one labelled point."""
    digest = hashlib.blake2b(
        f"{seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Deterministic consistent-hash ring with virtual nodes.

    Parameters
    ----------
    workers:
        Initial worker ids (order-insensitive: the ring is a pure
        function of the member *set* plus ``replicas`` and ``seed``).
    replicas:
        Virtual nodes per worker.  More replicas smooth the key
        distribution at the cost of a larger ring; 64 keeps the spread
        within a few percent for double-digit worker counts.
    seed:
        Folded into every hashed label so distinct gateways can run
        distinct (but individually stable) shard maps.
    """

    def __init__(self, workers: Sequence[str] = (), replicas: int = 64,
                 seed: int = 0):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.seed = seed
        self._workers: Dict[str, List[int]] = {}
        self._points: List[int] = []        # sorted ring positions
        self._owners: List[str] = []        # parallel to _points
        for worker in workers:
            self.add_worker(worker)

    # ------------------------------------------------------------------
    def workers(self) -> Tuple[str, ...]:
        """Current members, sorted."""
        return tuple(sorted(self._workers))

    def __len__(self) -> int:
        return len(self._workers)

    def add_worker(self, worker: str) -> None:
        """Add a member (``replicas`` virtual nodes)."""
        if worker in self._workers:
            raise ValueError(f"worker {worker!r} already on the ring")
        self._workers[worker] = [
            _point(self.seed, f"{worker}#{replica}")
            for replica in range(self.replicas)
        ]
        self._rebuild()

    def remove_worker(self, worker: str) -> None:
        """Drop a member; its keys redistribute to ring successors."""
        if worker not in self._workers:
            raise KeyError(f"worker {worker!r} not on the ring")
        del self._workers[worker]
        self._rebuild()

    def _rebuild(self) -> None:
        # Ties (two members hashing to one point) resolve by sorted
        # member id, keeping the ring a pure function of the member set.
        ring = sorted(
            (point, member)
            for member, points in self._workers.items()
            for point in points
        )
        self._points = [point for point, _ in ring]
        self._owners = [member for _, member in ring]

    # ------------------------------------------------------------------
    def assign(self, key: str) -> str:
        """The worker owning ``key``: first ring point clockwise of it."""
        if not self._points:
            raise RuntimeError("ring has no workers")
        point = _point(self.seed, f"key:{key}")
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """Map every key to its owning worker."""
        return {key: self.assign(key) for key in keys}

    def shards(self, keys: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
        """Inverse view: worker id -> the keys it owns (every member
        appears, even with no keys)."""
        grouped: Dict[str, List[str]] = {worker: []
                                         for worker in self._workers}
        for key in keys:
            grouped[self.assign(key)].append(key)
        return {worker: tuple(owned) for worker, owned in grouped.items()}
