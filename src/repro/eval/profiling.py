"""Wall-clock and peak-memory profiling for the efficiency comparison.

Fig. 6(a) of the paper reports training-time and memory overhead per
method.  Here every method runs on the same NumPy substrate and the same
workload, so relative ordering is meaningful; memory is peak *Python*
allocation measured with ``tracemalloc`` (the NumPy buffers dominate and
are tracked by it).

Since the observability layer landed, :func:`profile_call` is a thin
harness over :mod:`repro.obs.tracing`: the profiled call runs inside a
``profile`` span, and any spans the callee opens (the trainer's
``fit/epoch/batch``, the serving loop's ``serving.update``) are
aggregated into :attr:`ResourceProfile.breakdown` — per-component
attribution for the Fig. 6 comparison, for free, whenever tracing is
enabled around the call.

``tracemalloc`` handling is re-entrancy safe: if the interpreter is
already tracing (an enclosing :func:`profile_call`, a memory-tracing
:class:`~repro.obs.tracing.Tracer`, a pytest plugin), the profiler
snapshots the current allocation, resets the peak counter, and reports
the delta — and it only ever stops the tracer it started itself, so the
outer measurement keeps running.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.obs.tracing import aggregate_spans, current_tracer, span

__all__ = ["ResourceProfile", "profile_call"]

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class ResourceProfile:
    """Outcome of profiling one call."""

    wall_seconds: float
    peak_memory_mb: float
    result: object = None
    # Per-span-path totals ({path: {count, seconds, memory_kb}}) captured
    # during the call; empty unless tracing was enabled around it.
    breakdown: Dict[str, dict] = field(default_factory=dict)

    def as_row(self) -> tuple:
        return (self.wall_seconds, self.peak_memory_mb)

    def component_seconds(self, path: str) -> float:
        """Total wall seconds attributed to one span path (0.0 if absent)."""
        entry = self.breakdown.get(path)
        return entry["seconds"] if entry else 0.0


def profile_call(fn: Callable, *args, **kwargs) -> ResourceProfile:
    """Run ``fn`` once, measuring wall time and peak traced memory."""
    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
        baseline = 0
    tracer = current_tracer()
    span_mark = len(tracer.spans) if tracer is not None else 0
    started = time.perf_counter()
    try:
        with span("profile", target=getattr(fn, "__name__", repr(fn))):
            result = fn(*args, **kwargs)
    finally:
        elapsed = time.perf_counter() - started
        current, peak = tracemalloc.get_traced_memory()
        if not already_tracing:
            tracemalloc.stop()
    # ``peak`` is since-start for a tracer we own, since-reset otherwise;
    # either way the call's contribution is its growth over the baseline.
    peak_mb = max(max(peak, current) - baseline, 0) / _MB
    breakdown: Dict[str, dict] = {}
    if tracer is not None and len(tracer.spans) > span_mark:
        breakdown = aggregate_spans(tracer.spans[span_mark:])
    return ResourceProfile(elapsed, peak_mb, result, breakdown)
