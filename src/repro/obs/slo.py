"""Declarative SLOs with error budgets and multi-window burn-rate alerts.

A service-level objective says "this fraction of events must be good":
99.9% of acks under 50 ms, 99.5% of updates answered by the model path,
every service's score fresher than N ticks.  The engine turns the
streaming metrics the gateway and serving runtime already record into
that verdict, continuously:

* an :class:`SloObjective` names a metric, a goodness rule, and a
  ``target`` fraction;
* the **error budget** is the allowed bad fraction ``1 - target``; the
  *burn rate* over a window is ``bad_fraction / (1 - target)`` — burn 1
  spends the budget exactly at the rate the objective allows, burn 14.4
  exhausts a 30-day budget in 2 days;
* alerts use the SRE **multi-window, multi-burn-rate** recipe: a pair
  fires only when *both* its short and long windows exceed the pair's
  burn threshold — the short window makes alerts fast to clear, the long
  window keeps one bad tick from paging.  The defaults are the classic
  fast (5m/1h at 14.4x) and slow (6h/3d at 6x) pairs, expressed in ticks
  of the injected clock so tests and drills are deterministic.

Every rising edge emits a schema-versioned ``slo_burn`` event (falling
edges emit ``slo_recover``) and notifies subscribed listeners — the
remediation controller subscribes through
:meth:`~repro.runtime.remediation.controller.RemediationController.attach_slo`
and treats burns as a first-class incident source.  The engine also
maintains ``slo.budget_remaining`` / ``slo.burn_rate`` gauges, which is
how ``repro obs top`` shows budgets from ``metrics.jsonl`` alone.

Everything is pure arithmetic on the caller's tick clock: no wall-clock
reads, no randomness, so identical metric streams yield byte-identical
``slo_burn`` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EventLog, emit as emit_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "SLO_SCHEMA",
    "SloObjective",
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "SloEngine",
]

# Bumped on any backwards-incompatible change to the slo_burn payload.
SLO_SCHEMA = 1

_KINDS = ("latency", "availability", "freshness")


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over the streaming metrics.

    ``kind`` selects the goodness rule:

    ``latency``
        ``metric`` is a histogram; an observation is good when it is at
        most ``threshold`` seconds (counted from the bucket grid, so the
        verdict is exact at bucket edges and conservative inside).
    ``availability``
        ``metric`` counts all events (counter, or histogram — its count
        is used); ``bad_metric`` counts the bad ones.
    ``freshness``
        ``metric`` is a gauge sampled once per engine step; the step is
        good when the gauge is at most ``threshold``.

    ``labels`` (a tuple of ``(key, value)`` pairs) must be a subset of a
    series' labels for it to count; matching series are summed.
    ``service`` attributes burns to a service for remediation.
    """

    name: str
    kind: str
    metric: str
    target: float
    threshold: float = 0.0
    bad_metric: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()
    service: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; "
                             f"expected one of {_KINDS}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be a fraction in (0, 1)")
        if self.kind == "availability" and not self.bad_metric:
            raise ValueError("availability objectives need bad_metric")


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window alert pair (short + long, one burn threshold)."""

    label: str
    short_ticks: int
    long_ticks: int
    burn_threshold: float

    def __post_init__(self):
        if not 0 < self.short_ticks <= self.long_ticks:
            raise ValueError("need 0 < short_ticks <= long_ticks")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


# The SRE handbook pairs on a one-tick-per-second clock: page fast on a
# 14.4x burn (2% of a 30-day budget in an hour), ticket on a sustained
# 6x burn.  Tests and drills pass smaller windows on the same clock.
DEFAULT_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow("fast", short_ticks=300, long_ticks=3600,
               burn_threshold=14.4),
    BurnWindow("slow", short_ticks=21600, long_ticks=259200,
               burn_threshold=6.0),
)


class SloEngine:
    """Evaluate objectives over a registry on an injected tick clock."""

    def __init__(self, objectives: Sequence[SloObjective],
                 registry: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None,
                 windows: Sequence[BurnWindow] = DEFAULT_WINDOWS):
        if not objectives:
            raise ValueError("need at least one objective")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique: {names}")
        self.objectives = tuple(objectives)
        self.windows = tuple(windows)
        if not self.windows:
            raise ValueError("need at least one burn window")
        self.registry = registry if registry is not None else get_registry()
        self._events = events
        self._horizon = max(window.long_ticks for window in self.windows)
        # Per objective: cumulative (tick, bad, total) samples, oldest
        # first, trimmed to the alerting horizon.
        self._history: Dict[str, List[Tuple[int, float, float]]] = {
            name: [] for name in names
        }
        # Freshness objectives synthesise one event per step; their
        # cumulative counts live here rather than in any metric.
        self._synthetic: Dict[str, List[float]] = {
            objective.name: [0.0, 0.0] for objective in self.objectives
            if objective.kind == "freshness"
        }
        self._active: Dict[Tuple[str, str], bool] = {}
        self._last_tick: Optional[int] = None
        self._listeners: List[Callable[[SloObjective, dict], None]] = []

    # ------------------------------------------------------------------
    def subscribe(self,
                  listener: Callable[[SloObjective, dict], None]) -> None:
        """``listener(objective, alert)`` fires on every rising edge —
        the remediation controller's subscription point.  Listener
        exceptions propagate: a broken control plane is a bug."""
        self._listeners.append(listener)

    def step(self, tick: int) -> List[dict]:
        """Evaluate every objective at ``tick``; returns new alerts.

        Ticks must be strictly increasing.  Each call samples the
        cumulative good/bad counts, updates the budget and burn gauges,
        and emits ``slo_burn`` / ``slo_recover`` on edges.
        """
        tick = int(tick)
        if self._last_tick is not None and tick <= self._last_tick:
            raise ValueError(
                f"tick must increase: {tick} after {self._last_tick}")
        self._last_tick = tick
        alerts: List[dict] = []
        for objective in self.objectives:
            bad, total = self._totals(objective)
            history = self._history[objective.name]
            history.append((tick, bad, total))
            floor = tick - self._horizon
            drop = 0
            while drop + 1 < len(history) and history[drop + 1][0] <= floor:
                drop += 1
            if drop:
                del history[:drop]
            budget = self._budget_remaining(objective, history, tick)
            self.registry.gauge("slo.budget_remaining",
                                objective=objective.name).set(budget)
            for window in self.windows:
                burn_short = self._burn(objective, history, tick,
                                        window.short_ticks)
                burn_long = self._burn(objective, history, tick,
                                       window.long_ticks)
                self.registry.gauge("slo.burn_rate",
                                    objective=objective.name,
                                    window=window.label).set(burn_short)
                firing = (burn_short >= window.burn_threshold
                          and burn_long >= window.burn_threshold)
                key = (objective.name, window.label)
                was_firing = self._active.get(key, False)
                if firing and not was_firing:
                    alert = {
                        "slo_schema": SLO_SCHEMA,
                        "objective": objective.name,
                        "window": window.label,
                        "burn_short": burn_short,
                        "burn_long": burn_long,
                        "burn_threshold": window.burn_threshold,
                        "budget_remaining": budget,
                        "tick": tick,
                        "service": objective.service,
                    }
                    self._emit("slo_burn", **alert)
                    for listener in self._listeners:
                        listener(objective, alert)
                    alerts.append(alert)
                elif was_firing and not firing:
                    self._emit("slo_recover", slo_schema=SLO_SCHEMA,
                               objective=objective.name,
                               window=window.label, tick=tick)
                self._active[key] = firing
        return alerts

    def active_alerts(self) -> List[Tuple[str, str]]:
        """Currently-firing ``(objective, window)`` pairs, sorted."""
        return sorted(key for key, firing in self._active.items() if firing)

    # ------------------------------------------------------------------
    # Goodness accounting
    # ------------------------------------------------------------------
    def _totals(self, objective: SloObjective) -> Tuple[float, float]:
        """Cumulative ``(bad, total)`` event counts for an objective."""
        if objective.kind == "latency":
            bad = total = 0.0
            for metric in self._matching(objective.metric, objective.labels):
                if not isinstance(metric, Histogram):
                    continue
                total += metric.count
                bad += metric.count - _good_below(metric,
                                                  objective.threshold)
            return bad, total
        if objective.kind == "availability":
            total = self._sum_series(objective.metric, objective.labels)
            bad = self._sum_series(objective.bad_metric, objective.labels)
            return min(bad, total), total
        # freshness: one synthetic event per matched gauge per step
        counts = self._synthetic[objective.name]
        for metric in self._matching(objective.metric, objective.labels):
            if not isinstance(metric, Gauge):
                continue
            counts[1] += 1.0
            if not metric.value <= objective.threshold:  # NaN counts bad
                counts[0] += 1.0
        return counts[0], counts[1]

    def _matching(self, name: str,
                  labels: Tuple[Tuple[str, str], ...]) -> List[object]:
        wanted = dict(labels)
        out = []
        for metric in self.registry.collect(name):
            have = dict(metric.labels)
            if all(have.get(key) == value for key, value in wanted.items()):
                out.append(metric)
        return out

    def _sum_series(self, name: str,
                    labels: Tuple[Tuple[str, str], ...]) -> float:
        total = 0.0
        for metric in self._matching(name, labels):
            if isinstance(metric, Histogram):
                total += metric.count
            elif isinstance(metric, (Counter, Gauge)):
                total += metric.value
        return total

    # ------------------------------------------------------------------
    # Burn-rate arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _baseline(history: List[Tuple[int, float, float]], tick: int,
                  window_ticks: int) -> Tuple[int, float, float]:
        """Latest sample at or before the window start (else the oldest
        sample: a partial window burns against what it has seen)."""
        start = tick - window_ticks
        base = history[0]
        for sample in history:
            if sample[0] <= start:
                base = sample
            else:
                break
        return base

    def _burn(self, objective: SloObjective,
              history: List[Tuple[int, float, float]], tick: int,
              window_ticks: int) -> float:
        _, bad_then, total_then = self._baseline(history, tick, window_ticks)
        _, bad_now, total_now = history[-1]
        events = total_now - total_then
        if events <= 0:
            return 0.0
        bad_fraction = (bad_now - bad_then) / events
        return bad_fraction / (1.0 - objective.target)

    def _budget_remaining(self, objective: SloObjective,
                          history: List[Tuple[int, float, float]],
                          tick: int) -> float:
        """Fraction of the error budget left over the longest window
        (1.0 untouched, 0.0 exhausted, negative when overspent)."""
        _, bad_then, total_then = self._baseline(history, tick,
                                                 self._horizon)
        _, bad_now, total_now = history[-1]
        events = total_now - total_then
        if events <= 0:
            return 1.0
        allowed = (1.0 - objective.target) * events
        return 1.0 - (bad_now - bad_then) / allowed

    def _emit(self, kind: str, **fields: object) -> None:
        if self._events is not None:
            self._events.emit(kind, **fields)
        else:
            emit_event(kind, **fields)


def _good_below(histogram: Histogram, threshold: float) -> float:
    """Observations provably at most ``threshold`` (bucket edges are
    inclusive upper bounds, so the count is exact at an edge and
    conservative inside a bucket)."""
    good = 0
    for index, bound in enumerate(histogram.bounds):
        if bound <= threshold:
            good += histogram.bucket_counts[index]
        else:
            break
    return float(good)
