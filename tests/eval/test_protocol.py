"""Experiment protocols on a tiny dataset with a trivial detector."""

import numpy as np
import pytest

from repro.core.detector import AnomalyDetector
from repro.data import load_dataset, tailored_singletons, transfer_pair, unified_groups
from repro.eval import (
    ProtocolResult,
    ServiceResult,
    evaluate_scores,
    run_split,
    run_tailored,
    run_transfer,
    run_unified,
)


class MagnitudeDetector(AnomalyDetector):
    """Trivial detector: score = mean |x| deviation from the train mean.

    Good enough to detect the injected anomalies on easy data, and cheap
    enough to exercise every protocol path.
    """

    name = "magnitude"

    def __init__(self):
        self.fitted_ids = []
        self.prepared_ids = []

    def fit(self, service_ids, train_series):
        self.fitted_ids = list(service_ids)
        return self

    def prepare_service(self, service_id, train_series):
        self.prepared_ids.append(service_id)

    def score(self, service_id, series):
        return np.abs(series - series.mean(axis=0)).mean(axis=1)


@pytest.fixture
def dataset():
    return load_dataset("smd", num_services=4, train_length=256,
                        test_length=512, seed=9)


class TestEvaluateScores:
    def test_best_f1_strategy(self, rng):
        labels = np.zeros(100, dtype=int)
        labels[10:20] = 1
        scores = labels * 3.0 + rng.random(100)
        outcome = evaluate_scores(scores, labels, "best_f1")
        assert outcome.metrics.f1 == 1.0

    def test_pot_strategy(self, rng):
        # POT fits the tail of the score stream itself; with a heavy clear
        # anomaly cluster the chosen threshold must sit above the normal
        # bulk and produce valid metrics.
        labels = np.zeros(2000, dtype=int)
        labels[100:200] = 1
        scores = labels * 10.0 + np.abs(rng.normal(size=2000))
        outcome = evaluate_scores(scores, labels, "pot")
        assert np.isfinite(outcome.threshold)
        assert outcome.threshold > np.median(scores)
        assert 0.0 <= outcome.metrics.f1 <= 1.0

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError):
            evaluate_scores(rng.random(10), np.zeros(10), "magic")


class TestProtocols:
    def test_run_unified_covers_all_services(self, dataset):
        result = run_unified(MagnitudeDetector, unified_groups(dataset, 2))
        assert len(result.services) == 4
        assert result.protocol == "unified"
        assert 0.0 <= result.f1 <= 1.0
        assert len(result.f1_per_service) == 4

    def test_run_tailored(self, dataset):
        result = run_tailored(MagnitudeDetector, tailored_singletons(dataset))
        assert len(result.services) == 4
        assert result.protocol == "tailored"

    def test_run_transfer_prepares_unseen(self, dataset):
        detectors = []

        def factory():
            detector = MagnitudeDetector()
            detectors.append(detector)
            return detector

        result = run_transfer(factory, transfer_pair(dataset, 2))
        assert result.protocol == "transfer"
        detector = detectors[0]
        assert len(detector.fitted_ids) == 2
        assert len(detector.prepared_ids) == 2  # the unseen group

    def test_run_unified_requires_groups(self):
        with pytest.raises(ValueError):
            run_unified(MagnitudeDetector, [])

    def test_summary_and_repr(self, dataset):
        result = run_unified(MagnitudeDetector, unified_groups(dataset, 2))
        summary = result.summary()
        assert summary.f1 == pytest.approx(result.f1)
        assert "magnitude" in repr(result)
