"""Table V — unified model over groups of ten services, MACE vs baselines.

The paper's headline table: every method trains ONE model per group of ten
services.  MACE's pattern memory lets the unified model serve diverse
normal patterns; the pooled baselines blur across patterns and lose F1,
most visibly on the diverse SMD profile.

JumpStarter is excluded (signal-based per-service method; the paper does
the same).
"""

from common import (
    PAPER_TABLE5_F1,
    TABLE_DATASETS,
    baseline_factory,
    bench_dataset,
    mace_factory,
    run_once,
    save_results,
    scale_params,
)
from repro.data import unified_groups
from repro.eval import format_table, run_unified

METHODS = ("DCdetector", "AnomalyTransformer", "DVGCRN", "OmniAnomaly",
           "MSCRED", "TranAD", "ProS", "VAE")


def compute_table():
    params = scale_params()
    results = {}
    for dataset_name in TABLE_DATASETS:
        dataset = bench_dataset(dataset_name)
        groups = unified_groups(dataset, params["group_size"])
        per_method = {}
        for method in METHODS:
            outcome = run_unified(baseline_factory(method), groups)
            per_method[method] = outcome
        per_method["MACE"] = run_unified(mace_factory(), groups)
        results[dataset_name] = per_method
    return results


def test_table5_unified(benchmark):
    results = run_once(benchmark, compute_table)
    print()
    measured = {}
    for dataset_name, per_method in results.items():
        rows = []
        measured[dataset_name] = {}
        for method, outcome in per_method.items():
            measured[dataset_name][method] = {
                "precision": outcome.precision,
                "recall": outcome.recall,
                "f1": outcome.f1,
            }
            rows.append((method, outcome.precision, outcome.recall,
                         outcome.f1, PAPER_TABLE5_F1[method][dataset_name]))
        print(format_table(
            ("method", "precision", "recall", "F1", "paper F1"), rows,
            title=f"Table V [{dataset_name}] — unified model (10 services/model)",
        ))
        print()
    save_results("table5", {"measured": measured, "paper": PAPER_TABLE5_F1})

    # Shape assertions mirroring the paper's claims:
    # 1. MACE leads on the diverse-pattern dataset and stays within noise of
    #    the best baseline everywhere else (the paper reports best-on-all;
    #    at this reduced scale a small tolerance absorbs run-to-run noise).
    # Tolerances: zero where the paper's margin is wide (diverse patterns);
    # wider where the paper itself says the field is tight (J-D2: "most
    # methods perform well... the advantage of MACE is not as obvious").
    tolerances = {"smd": 0.0, "j-d1": 0.0, "j-d2": 0.17, "smap": 0.06}
    for dataset_name, per_method in results.items():
        best_baseline = max(
            outcome.f1 for method, outcome in per_method.items()
            if method != "MACE"
        )
        mace_f1 = per_method["MACE"].f1
        assert mace_f1 >= best_baseline - tolerances[dataset_name], (
            f"{dataset_name}: MACE F1 {mace_f1:.3f} vs best baseline "
            f"{best_baseline:.3f}"
        )
    # 2. On the near-identical-pattern dataset (j-d2) the field is tighter
    #    than on the diverse one (smd): MACE's margin shrinks.
    def margin(name):
        scores = sorted((o.f1 for m, o in results[name].items() if m != "MACE"),
                        reverse=True)
        return results[name]["MACE"].f1 - scores[0]

    assert margin("j-d2") < margin("smd"), (
        "expected MACE's advantage to shrink when normal patterns are similar"
    )
