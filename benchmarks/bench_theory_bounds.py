"""Theory artefacts — Theorem 1 bound tightness and Theorem 2 gap curves.

Not a numbered table in the paper, but the quantitative backbone of §IV:
prints (i) the Monte-Carlo Definition-1 gap against the Theorem-1 upper
bound for normal- and anomaly-like amplitude distributions, and (ii) the
Theorem-2 reconstruction-error gap as a function of k under Assumption 1.
"""

import numpy as np

from common import run_once, save_results
from repro.eval import format_table
from repro.frequency import (
    corollary1_condition,
    corollary1_gap_under_shift,
    empirical_latent_gap,
    theorem1_upper_bound,
)


def compute():
    rng = np.random.default_rng(1)
    n, gamma = 5, 5
    alpha = np.full(n, 1.0 / n)

    rows_t1 = []
    for label, mean, std in (("normal", 2.0, 0.15), ("anomalous", 2.3, 0.6)):
        mu = np.full(n, mean)
        nu = np.full(n, std)
        samples = rng.normal(mu, nu, size=(20_000, n))
        empirical = empirical_latent_gap(samples, alpha, gamma)
        bound = theorem1_upper_bound(mu, nu, alpha, gamma)
        rows_t1.append((label, empirical, bound))

    # Theorem 2 gap vs k for a concentrated normal spectrum under a
    # positive amplitude shift (Assumption 1).
    q_normal = np.sort(rng.dirichlet(np.full(12, 0.4)))[::-1]
    total_energy, shift = 10.0, 0.5
    rows_t2 = []
    for k in range(1, 13):
        gap = corollary1_gap_under_shift(q_normal, k, total_energy, shift)
        rows_t2.append((k, q_normal[:k].sum(), corollary1_condition(q_normal, k),
                        gap))
    return rows_t1, rows_t2


def test_theory_bounds(benchmark):
    rows_t1, rows_t2 = run_once(benchmark, compute)
    print()
    print(format_table(
        ("amplitude regime", "empirical gap (Def. 1)", "Theorem 1 bound"),
        rows_t1, title="Theorem 1 — latent-to-spectrum gap vs upper bound",
    ))
    print()
    print(format_table(
        ("k", "normal coverage", "Corollary 1 holds", "Theorem 2 gap"),
        rows_t2, title="Theorem 2 — reconstruction-error gap vs subset size",
    ))
    save_results("theory", {
        "theorem1": [list(map(float, r[1:])) for r in rows_t1],
        "theorem2": [[int(r[0]), float(r[1]), bool(r[2]), float(r[3])]
                     for r in rows_t2],
    })
    # Bound dominates the empirical gap; anomalous regime has the wider gap.
    for _, empirical, bound in rows_t1:
        assert empirical <= bound
    assert rows_t1[1][1] > rows_t1[0][1]
    # Gap is zero at k = n and positive for k < n when Corollary 1 holds.
    assert abs(rows_t2[-1][3]) < 1e-9
    for k, _, holds, gap in rows_t2[:-1]:
        if holds:
            assert gap > 0
