"""Saving and loading fitted MACE detectors.

A fitted detector is (i) the shared network weights, (ii) the per-service
subspace bank, and (iii) the config.  Weights go to ``<stem>.npz`` via
:mod:`repro.nn.serialization`; config + bank go to ``<stem>.json``.

Crash safety: both artifacts are written to temporary files and atomically
renamed, weights **before** manifest.  The manifest is the commit record —
if the process dies mid-save, the destination either still holds the
previous complete pair or holds no manifest at all; it never holds a
manifest that points at truncated weights.  Loads raise typed errors
(:class:`MissingArtifactError`, :class:`CorruptArtifactError`,
:class:`StateMismatchError`) instead of raw ``KeyError``/``ValueError``
surfacing from deep inside ``load_state``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.detector import MaceDetector
from repro.core.model import MaceConfig
from repro.core.trainer import MaceTrainer
from repro.frequency.context_aware import SubspaceBank
from repro.nn.serialization import (
    SerializationError,
    atomic_replace,
    load_state,
    save_state,
)

__all__ = [
    "DetectorPersistenceError",
    "MissingArtifactError",
    "CorruptArtifactError",
    "StateMismatchError",
    "save_detector",
    "load_detector",
]

_MANIFEST_KEYS = ("format", "config", "score_stride", "subspaces",
                  "weights_file")


class DetectorPersistenceError(ValueError):
    """Base class for detector save/load failures.

    Subclasses ``ValueError`` so pre-existing callers that caught the old
    untyped errors keep working.
    """


class MissingArtifactError(DetectorPersistenceError):
    """The manifest or the weights file it references does not exist."""


class CorruptArtifactError(DetectorPersistenceError):
    """An artifact exists but cannot be parsed (truncated/corrupted)."""


class StateMismatchError(DetectorPersistenceError):
    """Manifest and weights disagree (missing keys or shape mismatch)."""


def save_detector(detector: MaceDetector, path: str | Path) -> Path:
    """Persist a fitted detector; returns the JSON manifest path.

    The write is atomic at the pair level: the weights archive lands first,
    the manifest (which references it) last, each via write-temp-then-rename.
    """
    trainer = detector.trainer
    if trainer is None:
        raise ValueError("detector is not fitted; nothing to save")
    path = Path(path)
    stem = path.with_suffix("")
    weights_path = stem.with_suffix(".npz")
    manifest_path = stem.with_suffix(".json")
    save_state(trainer.model.state_dict(), weights_path)
    manifest = {
        "format": "repro.mace-detector.v1",
        "config": dataclasses.asdict(detector.config),
        "score_stride": detector.score_stride,
        "subspaces": trainer.extractor.bank.to_dict(),
        "weights_file": weights_path.name,
    }
    atomic_replace(manifest_path,
                   json.dumps(manifest, indent=2).encode("utf-8"))
    return manifest_path


def load_detector(path: str | Path) -> MaceDetector:
    """Restore a detector saved by :func:`save_detector` (ready to score).

    Raises
    ------
    MissingArtifactError
        Manifest or weights file absent.
    CorruptArtifactError
        Manifest is not valid JSON / not a detector manifest, or the
        weights archive is unreadable.
    StateMismatchError
        Weights archive does not match the model the manifest describes
        (missing/unexpected parameters or a shape mismatch).
    """
    manifest_path = Path(path).with_suffix(".json")
    if not manifest_path.is_file():
        raise MissingArtifactError(
            f"detector manifest does not exist: {manifest_path}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArtifactError(
            f"detector manifest {manifest_path} is not valid JSON "
            f"(truncated write?): {error}"
        ) from error
    if not isinstance(manifest, dict) or manifest.get("format") != "repro.mace-detector.v1":
        raise CorruptArtifactError(
            f"unrecognised manifest format in {manifest_path}: "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}"
        )
    missing = [key for key in _MANIFEST_KEYS if key not in manifest]
    if missing:
        raise CorruptArtifactError(
            f"manifest {manifest_path} is missing keys {missing}"
        )

    try:
        config = MaceConfig(**manifest["config"])
    except TypeError as error:
        raise CorruptArtifactError(
            f"manifest {manifest_path} has an invalid config block: {error}"
        ) from error
    detector = MaceDetector(config, score_stride=manifest["score_stride"])
    trainer = MaceTrainer(config)

    weights_path = manifest_path.parent / manifest["weights_file"]
    try:
        state = load_state(weights_path)
    except SerializationError as error:
        if not weights_path.is_file():
            raise MissingArtifactError(str(error)) from error
        raise CorruptArtifactError(str(error)) from error
    try:
        trainer.model.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise StateMismatchError(
            f"weights in {weights_path} do not match the model described "
            f"by {manifest_path}: {error}"
        ) from error
    trainer.model.eval()

    try:
        bank = SubspaceBank.from_dict(manifest["subspaces"])
    except (KeyError, TypeError, ValueError) as error:
        raise CorruptArtifactError(
            f"manifest {manifest_path} has an invalid subspace bank: {error}"
        ) from error
    trainer.extractor.bank = bank
    trainer.extractor._transforms.clear()
    detector.trainer = trainer
    return detector
