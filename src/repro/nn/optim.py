"""First-order optimizers: SGD (momentum/Nesterov), Adam, AdamW.

Also provides gradient clipping by global norm, which the trainer uses to
keep the high-power dualistic convolution from exploding (the paper notes
large γ risks gradient explosion; σ and clipping are the mitigations).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


class Optimizer:
    """Base optimizer storing the parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization — required for crash-safe training checkpoints: the
    # moment estimates are part of the optimisation trajectory, so resuming
    # without them would diverge from the uninterrupted run.
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of slot arrays (copies); empty for stateless SGD."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output in place."""
        if state:
            raise ValueError(
                f"{self.__class__.__name__} is stateless but received "
                f"state keys {sorted(state)}"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(parameters, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {f"velocity/{i}": v.copy()
                for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        _load_slots(state, {"velocity": self._velocity})


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        scale = self.lr * math.sqrt(bias2) / bias1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param.data -= scale * m / (np.sqrt(v) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {f"m/{i}": m.copy() for i, m in enumerate(self._m)}
        state.update({f"v/{i}": v.copy() for i, v in enumerate(self._v)})
        state["step_count"] = np.asarray(self._step_count)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "step_count" not in state:
            raise ValueError("Adam state is missing 'step_count'")
        _load_slots({k: v for k, v in state.items() if k != "step_count"},
                    {"m": self._m, "v": self._v})
        self._step_count = int(state["step_count"])


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def _load_slots(state: Dict[str, np.ndarray],
                slots: Dict[str, List[np.ndarray]]) -> None:
    """Copy ``{prefix}/{i}`` arrays from ``state`` into the slot lists."""
    expected = {f"{prefix}/{i}"
                for prefix, arrays in slots.items()
                for i in range(len(arrays))}
    if set(state) != expected:
        raise ValueError(
            f"optimizer state mismatch: missing={sorted(expected - set(state))} "
            f"unexpected={sorted(set(state) - expected)}"
        )
    for prefix, arrays in slots.items():
        for i, current in enumerate(arrays):
            value = np.asarray(state[f"{prefix}/{i}"], dtype=current.dtype)
            if value.shape != current.shape:
                raise ValueError(
                    f"optimizer slot {prefix}/{i} has shape {value.shape}, "
                    f"expected {current.shape}"
                )
            current[...] = value


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm and total > 0:
        factor = max_norm / total
        for param in params:
            param.grad *= factor
    return total
