"""Differential harness: planned execution must match the tape bitwise.

Two hundred seeded random graphs — each salted with the rewrite triggers
(transpose pairs, reshape pairs over fresh results, identity layouts,
dead branches) — are traced, compiled, and replayed step by step; every
surviving step's array must equal the traced array *bit for bit*
(:func:`repro.analysis.plan.bitwise_equal` compares raw bytes, so NaN
payloads and signed zeros count).  The full MACE forward/loss graph gets
the same treatment, plus a backward pass to show planning never disturbs
the live tape.
"""

import numpy as np
import pytest

from repro.analysis.alias import invert_perm
from repro.analysis.plan import (
    bitwise_equal,
    build_plan,
    execute_graph_plan,
)
from repro.analysis.trace import trace
from repro.nn.tensor import Tensor

NUM_RANDOM_GRAPHS = 200
# Every seeded graph plants one transpose pair (fuse + cancel = 2
# rewrites) and one reshape pair over a fresh result (>= 1); dead-branch
# drops add more.  Anything far below 3 per graph means a rewrite pass
# silently stopped firing.
MIN_TOTAL_REWRITES = 3 * NUM_RANDOM_GRAPHS


def _random_case(seed: int):
    """Build (fn, inputs) for one randomized graph; deterministic per seed."""
    rng = np.random.default_rng(seed)
    shape = (2, 3, 4)
    x = Tensor(rng.standard_normal(shape))
    y = Tensor(rng.standard_normal(shape))

    def fn():
        pool = [x, y]

        def pick():
            return pool[int(rng.integers(0, len(pool)))]

        # Planted rewrite triggers -------------------------------------
        perm = tuple(int(a) for a in rng.permutation(3))
        pool.append(pick().transpose(perm).transpose(invert_perm(perm)))
        fresh = pick().tanh()
        pool.append(fresh.reshape((6, 4)).reshape(shape))
        if rng.random() < 0.5:
            pool.append(pick().transpose((0, 1, 2)))     # identity layout
        (pick() * float(rng.normal())).exp()             # dead branch

        # Random op soup ------------------------------------------------
        for _ in range(int(rng.integers(3, 9))):
            roll = int(rng.integers(0, 7))
            t = pick()
            if roll == 0:
                pool.append(t.sigmoid())
            elif roll == 1:
                pool.append(t.tanh() * pick())
            elif roll == 2:
                pool.append(t + pick())
            elif roll == 3:
                pool.append((t - pick()).relu())
            elif roll == 4:
                pool.append(t.clip(-2.0, 2.0))
            elif roll == 5:
                q = tuple(int(a) for a in rng.permutation(3))
                pool.append(t.transpose(q).transpose(invert_perm(q)))
            else:
                pool.append(t.abs().sqrt())
        total = pool[-1].sum() + pool[-2].sum()
        return total, pool[-1]

    return fn, (x, y)


def _assert_plan_matches_tape(graph, plan):
    values = execute_graph_plan(plan, graph, return_all=True)
    for step, value in zip(plan.steps, values):
        reference = graph.concrete(step.origin)
        assert reference is not None, step
        assert bitwise_equal(value, reference), (
            f"step {step.index} ({step.op}, origin {step.origin}) diverged "
            "from the traced tape")
    for position, output in enumerate(plan.outputs):
        assert bitwise_equal(values[output],
                             graph.concrete(graph.outputs[position]))


def test_random_graphs_execute_bitwise_identically():
    total_rewrites = 0
    for seed in range(NUM_RANDOM_GRAPHS):
        fn, inputs = _random_case(seed)
        graph = trace(fn, inputs=inputs)
        plan, _ = build_plan(graph)
        assert plan.proof is not None
        _assert_plan_matches_tape(graph, plan)
        total_rewrites += len(plan.rewrites)
    assert total_rewrites >= MIN_TOTAL_REWRITES, (
        f"only {total_rewrites} rewrites across {NUM_RANDOM_GRAPHS} seeded "
        "graphs; a rewrite pass regressed")


def test_mace_full_graph_bitwise_identical():
    from repro.analysis.audit import _model_case

    fn, inputs, module = _model_case("MACE")
    graph = trace(fn, inputs=inputs, module=module)
    plan, findings = build_plan(graph)
    assert plan.proof is not None
    assert plan.rewrites, "MACE's DFT reshape pair should fuse"
    _assert_plan_matches_tape(graph, plan)
    # The BENCH_obs.json hot spots must surface as OPT401 copy pairs.
    copy_pairs = {f.file for f in findings
                  if f.rule == "OPT401" and "full copy" in f.message}
    assert any("dualistic" in f for f in copy_pairs)
    assert any("context_aware" in f for f in copy_pairs)


def test_mace_backward_unaffected_by_planning():
    from repro.analysis.audit import _model_case

    fn, inputs, module = _model_case("MACE")
    holder = {}

    def capture():
        loss = fn()
        holder["loss"] = loss
        return loss

    graph = trace(capture, inputs=inputs, module=module)
    build_plan(graph)                   # planning must not touch the tape
    holder["loss"].backward()
    grads = [p.grad for p in module.parameters() if p.grad is not None]
    assert grads, "backward produced no gradients"
    for grad in grads:
        assert np.isfinite(grad).all()
