"""Chaos suite: seeded fault injection against the serving runtime.

Acceptance criteria (ISSUE 2): with the seeded ``FaultInjector``
corrupting 2% of observations and raising from 1-in-200 scoring calls
across a 10-service stream, the runtime loop never raises, quarantined
services recover via backoff probes, and alert F1 on the uncorrupted
services stays within 5% of the fault-free run.

The detector here is a cheap deterministic z-score scorer — the chaos
suite exercises the *runtime's* fault handling, which is detector
agnostic, and must stay fast enough to run in `make chaos` on every
commit.  End-to-end MACE serving under faults is covered by the CLI
drill (``repro chaos``) and tests/runtime/test_serving.py.
"""

import numpy as np
import pytest

from repro.runtime import BreakerConfig, FaultInjector, ServingRuntime
from repro.runtime.health import HealthState
from tests.runtime.test_serving import ScriptedDetector

SEED_MATRIX = [0, 1, 2]

NUM_SERVICES = 10
HISTORY_LEN = 320
TEST_LEN = 320
WINDOW = 40
SPIKE_EVENTS = 8
SPIKE_LEN = 3
SPIKE_SIZE = 6.0


def _make_fleet(seed):
    """10 services of sine+noise with labelled spike anomalies in test."""
    rng = np.random.default_rng(1000 + seed)
    services = {}
    for index in range(NUM_SERVICES):
        period = 16 + 4 * (index % 4)
        t = np.arange(HISTORY_LEN + TEST_LEN)
        base = np.stack([
            np.sin(2 * np.pi * t / period),
            0.5 * np.cos(2 * np.pi * t / (period * 2)),
        ], axis=1)
        base += 0.1 * rng.normal(size=base.shape)
        history, test = base[:HISTORY_LEN], base[HISTORY_LEN:]
        labels = np.zeros(TEST_LEN, dtype=bool)
        starts = rng.choice(
            np.arange(WINDOW, TEST_LEN - SPIKE_LEN), size=SPIKE_EVENTS,
            replace=False,
        )
        test = test.copy()
        for start in starts:
            test[start:start + SPIKE_LEN, 0] += SPIKE_SIZE
            labels[start:start + SPIKE_LEN] = True
        services[f"svc-{index}"] = (history, test, labels)
    return services


def _run_fleet(services, detector, injector=None, corrupted_services=()):
    """Drive the full fleet; returns per-service alert flag arrays."""
    runtime = ServingRuntime(detector, window=WINDOW, q=1e-2)
    for service_id, (history, _, _) in services.items():
        runtime.start_service(service_id, history)
    alerts = {service_id: np.zeros(TEST_LEN, dtype=bool)
              for service_id in services}
    for step in range(TEST_LEN):
        for service_id, (_, test, _) in services.items():
            observation = test[step]
            if injector is not None and service_id in corrupted_services:
                observation = injector.corrupt(observation)
            outcome = runtime.update(service_id, observation)
            alerts[service_id][step] = outcome.is_alert
    return runtime, alerts


def _f1(alerts, labels):
    tp = np.sum(alerts & labels)
    fp = np.sum(alerts & ~labels)
    fn = np.sum(~alerts & labels)
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def _fleet_f1(alerts, services, service_ids):
    tp = fp = fn = 0
    for service_id in service_ids:
        labels = services[service_id][2]
        flags = alerts[service_id]
        tp += np.sum(flags & labels)
        fp += np.sum(flags & ~labels)
        fn += np.sum(~flags & labels)
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


@pytest.mark.parametrize("seed", SEED_MATRIX)
class TestChaosMatrix:
    """The headline chaos run, repeated over the fixed seed matrix."""

    def _detector(self, services):
        return ScriptedDetector().fit(
            list(services), [history for history, _, _ in services.values()]
        )

    def test_faulted_fleet_meets_acceptance_criteria(self, seed):
        services = _make_fleet(seed)
        corrupted = {f"svc-{i}" for i in range(NUM_SERVICES // 2)}
        uncorrupted = sorted(set(services) - corrupted)

        # Fault-free reference run.
        _, clean_alerts = _run_fleet(services, self._detector(services))
        clean_f1 = _fleet_f1(clean_alerts, services, uncorrupted)
        assert clean_f1 > 0.5, "reference detector must actually detect"

        # Chaos run: 2% observation corruption on half the fleet plus
        # 1-in-200 scoring exceptions everywhere.  The loop itself must
        # never raise (any exception fails this test).
        injector = FaultInjector(seed=seed, corrupt_prob=0.02,
                                 raise_prob=1.0 / 200.0)
        detector = injector.wrap_detector(self._detector(services))
        runtime, chaos_alerts = _run_fleet(
            services, detector, injector=injector,
            corrupted_services=corrupted,
        )
        chaos_f1 = _fleet_f1(chaos_alerts, services, uncorrupted)
        assert abs(chaos_f1 - clean_f1) <= 0.05 * clean_f1, (
            f"seed {seed}: F1 drifted more than 5%: "
            f"clean {clean_f1:.4f} vs chaos {chaos_f1:.4f}"
        )
        # Faults were actually injected and absorbed.
        assert injector.scoring_faults > 0
        assert injector.observations_corrupted > 0
        # No service may end the run quarantined from random transient
        # faults — the breaker must have re-admitted everything.
        final_states = runtime.health_states().values()
        assert HealthState.QUARANTINED not in final_states

    def test_corrupted_observations_never_reach_buffers(self, seed):
        services = _make_fleet(seed)
        injector = FaultInjector(seed=seed, corrupt_prob=0.1)
        detector = injector.wrap_detector(self._detector(services))
        runtime, _ = _run_fleet(services, detector, injector=injector,
                                corrupted_services=set(services))
        for service_id in services:
            buffer = runtime.streaming._streams[service_id].buffer
            assert np.isfinite(buffer).all()


class TestQuarantineRecovery:
    """A sustained outage must quarantine, then recover via probes."""

    def test_outage_quarantines_and_backoff_probes_readmit(self):
        services = _make_fleet(0)
        outage_services = {"svc-0"}

        class OutageDetector(ScriptedDetector):
            def __init__(self):
                super().__init__()
                self.down = False

            def score(self, service_id, series):
                if self.down and service_id in outage_services:
                    raise RuntimeError("sustained outage")
                return super().score(service_id, series)

        detector = OutageDetector().fit(
            list(services), [history for history, _, _ in services.values()]
        )
        runtime = ServingRuntime(
            detector, window=WINDOW, q=1e-2,
            breaker_config=BreakerConfig(failure_threshold=3,
                                         recovery_successes=4,
                                         probe_successes=2, base_backoff=4,
                                         max_backoff=64),
        )
        for service_id, (history, _, _) in services.items():
            runtime.start_service(service_id, history)

        fallback_updates = 0
        for step in range(TEST_LEN):
            detector.down = 60 <= step < 160
            for service_id, (_, test, _) in services.items():
                outcome = runtime.update(service_id, test[step])
                if service_id in outage_services:
                    fallback_updates += outcome.used_fallback

        health = runtime.health("svc-0")
        states = [dst for _, _, dst in health.transitions]
        assert HealthState.QUARANTINED in states, "breaker never tripped"
        assert health.state is HealthState.HEALTHY, (
            f"service stuck in {health.state}"
        )
        assert fallback_updates > 0, "no degraded-mode scoring happened"
        # Quarantine must end *after* the outage ends (probes during the
        # outage fail and double the backoff instead).
        quarantine_end = max(
            tick for tick, src, _ in health.transitions
            if src is HealthState.QUARANTINED
        )
        assert quarantine_end > 160
        # Unaffected services never left HEALTHY.
        for index in range(1, NUM_SERVICES):
            assert runtime.health(f"svc-{index}").state is HealthState.HEALTHY
