"""Static shape/dtype contract checking over ``Module`` trees.

Every layer in ``repro.nn.modules`` and the MACE modules in ``repro.core``
declare a ``contract(spec) -> spec`` method (see
:mod:`repro.analysis.spec`): given the static type of the input —
:class:`~repro.analysis.spec.TensorSpec`, a shape of concrete ints and
symbolic dims plus a dtype — the method returns the output spec or raises
:class:`~repro.analysis.spec.ContractError`.  Composite modules chain
their children through :func:`~repro.analysis.spec.child_contract`, which
builds the dotted path reported on failure (``peak_branch.encoder``).

:func:`check_model` is the entry point: it validates an architecture
without running any data — catching dimension mismatches, silent
broadcasting (e.g. a ``LayerNorm`` width that would broadcast instead of
normalise) and silent dtype promotion to float64 — in microseconds rather
than a forward pass.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.analysis.spec import ContractError, Dim, TensorSpec

__all__ = ["check_model", "input_spec"]

ShapeLike = Sequence[Union[int, str, Dim]]


def input_spec(shape: ShapeLike, dtype="float64") -> TensorSpec:
    """Build a :class:`TensorSpec` from a shape of ints and symbol names.

    Strings become symbolic dims: ``input_spec(("N", 40, 3))`` is a batch
    of 40-step, 3-feature windows with a free batch size.
    """
    return TensorSpec(shape, dtype=dtype)


def check_model(model, spec: Union[TensorSpec, ShapeLike], *args, **kwargs):
    """Statically validate ``model`` against an input spec.

    Parameters
    ----------
    model:
        Any module declaring a ``contract`` method (all ``repro.nn`` layers
        and the MACE ``repro.core`` modules do).
    spec:
        A :class:`TensorSpec` or a plain shape, e.g. ``("N", 40, 3)``.
    *args, **kwargs:
        Extra positional/keyword contract arguments for modules whose
        forward takes more than one input.

    Returns the inferred output spec (or tuple of specs) on success and
    raises :class:`ContractError` naming the offending submodule path on
    failure.
    """
    if not isinstance(spec, TensorSpec):
        spec = input_spec(spec)
    contract = getattr(model, "contract", None)
    if contract is None:
        raise ContractError(
            f"{type(model).__name__} does not declare a shape contract"
        )
    return contract(spec, *args, **kwargs)
