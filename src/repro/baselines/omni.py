"""OmniAnomaly-lite (Su et al., KDD 2019).

The original combines a stochastic recurrent network with planar
normalising flows.  This faithful-in-spirit reduction keeps the components
that drive its behaviour — a GRU encoder producing per-step latent
Gaussians, a GRU decoder reconstructing each step, trained with
reconstruction + KL — and drops the flow.  The sequential recurrence is
kept deliberately: it is why recurrent baselines lose the efficiency
comparison (Fig. 6a, paper §I C2).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spec import TensorSpec, child_contract
from repro.baselines.base import BaselineConfig, NeuralWindowDetector
from repro.nn import functional as F
from repro.nn.modules.base import Module
from repro.nn.modules.linear import Linear
from repro.nn.modules.recurrent import GRU
from repro.nn.tensor import Tensor

__all__ = ["OmniModel", "OmniAnomalyDetector"]


class OmniModel(Module):
    """GRU encoder → per-step latent Gaussian → GRU decoder."""

    def __init__(self, num_features: int, hidden: int = 16, latent: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.encoder = GRU(num_features, hidden, rng=rng)
        self.mu_head = Linear(hidden, latent, rng=rng)
        self.logvar_head = Linear(hidden, latent, rng=rng)
        self.decoder = GRU(latent, hidden, rng=rng)
        self.out_head = Linear(hidden, num_features, rng=rng)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, windows: Tensor):
        states, _ = self.encoder(windows)            # (B, T, H)
        mu = self.mu_head(states)                    # (B, T, L)
        logvar = self.logvar_head(states).clip(-8.0, 8.0)
        if self.training:
            noise = Tensor(self._rng.normal(size=mu.shape))
            z = mu + (logvar * 0.5).exp() * noise
        else:
            z = mu
        decoded, _ = self.decoder(z)                 # (B, T, H)
        reconstruction = self.out_head(decoded)      # (B, T, m)
        return reconstruction, mu, logvar

    def contract(self, spec: TensorSpec):
        states, _ = child_contract("encoder", self.encoder, spec)
        mu = child_contract("mu_head", self.mu_head, states)
        logvar = child_contract("logvar_head", self.logvar_head, states)
        decoded, _ = child_contract("decoder", self.decoder, mu)
        reconstruction = child_contract("out_head", self.out_head, decoded)
        return reconstruction, mu, logvar


class OmniAnomalyDetector(NeuralWindowDetector):
    """OmniAnomaly-lite on the shared detector API."""

    name = "OmniAnomaly"

    def __init__(self, config: BaselineConfig | None = None, hidden: int = 16,
                 latent: int = 4, beta: float = 1e-2):
        super().__init__(config)
        self.hidden = hidden
        self.latent = latent
        self.beta = beta

    def build_model(self, num_features: int) -> Module:
        return OmniModel(num_features, self.hidden, self.latent, rng=self.rng)

    def model_loss(self, model: Module, windows: Tensor,
                   service_id: str) -> Tensor:
        reconstruction, mu, logvar = model(windows)
        return F.mse_loss(reconstruction, windows) + self.beta * F.kl_diag_gaussian(
            mu, logvar
        )

    def window_errors(self, model: Module, windows: np.ndarray,
                      service_id: str) -> np.ndarray:
        reconstruction, _, _ = model(Tensor(windows))
        return ((reconstruction.data - windows) ** 2).mean(axis=-1)
