"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.spec import ContractError, TensorSpec, child_contract
from repro.nn.modules.base import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain modules, feeding each output to the next module's input."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def contract(self, spec: TensorSpec) -> TensorSpec:
        for name, module in self._modules.items():
            spec = child_contract(name, module, spec)
        return spec

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """A list of submodules, registered for parameter traversal."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")

    def contract(self, spec: TensorSpec) -> TensorSpec:
        raise ContractError(
            "ModuleList has no call semantics; check its children directly"
        )
