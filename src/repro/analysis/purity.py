"""Determinism-root contract check (DET501-DET508) over effect signatures.

The repo's reproducibility guarantee is *pure modulo declared seeds*:
given the same inputs and the same seed material, every declared
determinism root must produce bitwise-identical outputs.  This pass
consumes the :class:`~repro.analysis.effects.RepoModel` built by
:func:`~repro.analysis.effects.analyze_package` and checks each root in
:data:`DETERMINISM_ROOTS` against that contract.

For every effect atom reachable from a root through the call graph, one
finding is emitted per intrinsic site, carrying the shortest call chain
from the root down to the site (``fit -> span -> _ActiveSpan.__enter__
reads time.perf_counter``).  Sites audited with ``# effects: ok`` are
still reported, flagged ``suppressed`` — declared, not silenced — and
their fingerprints are gated against ``det_baseline.json``: an audited
finding that is *new* (an unreviewed annotation) fails exactly like one
that *vanished* (either genuinely fixed — update the baseline — or the
analyzer silently lost coverage, which must not pass unnoticed).

Rules:

========  ==============  ======  ==========================================
code      atom            level   meaning
========  ==============  ======  ==========================================
DET501    RNG_GLOBAL      error   hidden global RNG stream reachable
DET502    TIME            warn    wall-clock read reachable
DET503    FS_ORDER        error   OS-ordered directory listing reachable
DET504    UNORDERED_ITER  error   set-order-dependent iteration reachable
DET505    ENV             warn    environment read reachable
DET506    ID_HASH         warn    object-identity value reachable
DET507    (structural)    error   declared root not found in the package
DET508    (structural)    error   stale or malformed ``# effects: ok``
========  ==============  ======  ==========================================

``RNG_SEEDED`` never produces a finding: an explicitly threaded
``Generator`` is exactly what the contract permits.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dataflow import Finding
from repro.analysis.effects import EffectSite, RepoModel, analyze_package

__all__ = [
    "DET_RULES",
    "DETERMINISM_ROOTS",
    "DET_BASELINE_VERSION",
    "check_roots",
    "effects_report",
    "load_det_baseline",
    "write_det_baseline",
    "det_regressions",
]

DET_BASELINE_VERSION = 1

# Declared determinism roots: public entry points whose outputs the
# repo promises are bitwise-reproducible modulo declared seeds.
DETERMINISM_ROOTS: Tuple[str, ...] = (
    "repro.core.trainer.MaceTrainer.fit",
    "repro.core.detector.MaceDetector.score",
    "repro.runtime.serving.ServingRuntime.update",
    "repro.runtime.orchestrator.FleetOrchestrator.run",
    "repro.runtime.remediation.drill.run_drill",
    "repro.analysis.plan.build_plan",
    "repro.analysis.plan.execute_plan",
)

_ATOM_RULES: Dict[str, Tuple[str, str, str]] = {
    # atom -> (code, severity, name)
    "RNG_GLOBAL": ("DET501", "error", "global-rng-reachable"),
    "TIME": ("DET502", "warn", "wall-clock-reachable"),
    "FS_ORDER": ("DET503", "error", "fs-order-reachable"),
    "UNORDERED_ITER": ("DET504", "error", "unordered-iter-reachable"),
    "ENV": ("DET505", "warn", "env-read-reachable"),
    "ID_HASH": ("DET506", "warn", "id-hash-reachable"),
}

DET_RULES: Dict[str, Tuple[str, str]] = {
    code: (severity, name)
    for code, severity, name in _ATOM_RULES.values()
}
DET_RULES["DET507"] = ("error", "missing-determinism-root")
DET_RULES["DET508"] = ("error", "stale-effects-annotation")


def _root_short(qname: str) -> str:
    """``MaceTrainer.fit`` from the full dotted qname."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qname


def _site_finding(model: RepoModel, root: str, site: EffectSite,
                  chain: List[Tuple[str, int, str]]) -> Finding:
    code, severity, name = _ATOM_RULES[site.atom]
    hops = [_root_short(root)]
    hops += [qname.split(".")[-1] for _, _, qname in chain[1:]]
    hops.append(site.function.split(".")[-1])
    # drop consecutive duplicates (site inside the last chained function)
    path: List[str] = []
    for hop in hops:
        if not path or path[-1] != hop:
            path.append(hop)
    message = " -> ".join(path) + f" {site.detail}"
    if site.audited:
        message += f" [audited: {site.reason}]"
    frames = tuple((file, line, qname) for file, line, qname in chain)
    frames += ((site.file, site.line, site.detail),)
    return Finding(
        rule=code, severity=severity, message=message, op=site.atom,
        node_index=-1, module_path=f"{_root_short(root)}<-{site.function}",
        file=site.file, line=site.line, model=_root_short(root),
        suppressed=site.audited, frames=frames, rule_name=name)


def check_roots(model: Optional[RepoModel] = None,
                roots: Sequence[str] = DETERMINISM_ROOTS) -> List[Finding]:
    """All DET findings for the declared roots (audited ones suppressed)."""
    if model is None:
        model = analyze_package()
    findings: List[Finding] = []
    for root in roots:
        if root not in model.functions:
            findings.append(Finding(
                rule="DET507", severity="error",
                message=f"declared determinism root {root} was not found "
                        "in the analyzed package",
                op="missing-root", node_index=-1,
                module_path=_root_short(root), model=_root_short(root),
                rule_name=DET_RULES["DET507"][1]))
            continue
        order, parent = model.reachable(root)
        for qname in order:
            for site in model.functions[qname].sites:
                if site.atom not in _ATOM_RULES:
                    continue  # RNG_SEEDED: allowed by the contract
                chain = model.chain(root, qname, parent)
                findings.append(_site_finding(model, root, site, chain))
    # stale / malformed annotations anywhere in the package
    for annotation in model.annotations():
        if annotation.malformed:
            detail = annotation.problem
        elif not annotation.consumed:
            detail = (f"no {annotation.atom} site detected on this line "
                      "(fixed, moved, or never real)")
        else:
            continue
        findings.append(Finding(
            rule="DET508", severity="error",
            message=f"stale effects annotation: {detail}",
            op="annotation", node_index=-1,
            module_path=f"line:{annotation.line}",
            file=annotation.file, line=annotation.line, model="annotations",
            rule_name=DET_RULES["DET508"][1]))
    findings.sort(key=lambda f: (f.rule, f.model, f.module_path, f.op,
                                 f.file, f.line))
    return findings


def effects_report(model: Optional[RepoModel] = None,
                   roots: Sequence[str] = DETERMINISM_ROOTS) -> dict:
    """The ``repro analyze --effects`` report (DET + FS findings).

    Deliberately free of wall-clock timing so the report is
    byte-identical across runs (the analyzer must pass its own gate).
    """
    from repro.analysis.forksafety import check_fork_safety

    if model is None:
        model = analyze_package()
    # Fork safety runs first: it consumes FS-atom annotations, which the
    # stale-annotation sweep inside check_roots must observe as consumed.
    findings = check_fork_safety(model)
    findings.extend(check_roots(model, roots))
    findings.sort(key=lambda f: (f.rule, f.model, f.module_path, f.op,
                                 f.file, f.line))
    root_rows = []
    for root in roots:
        if root not in model.functions:
            root_rows.append({"root": root, "found": False,
                              "functions": 0, "signature": {}})
            continue
        order, _ = model.reachable(root)
        root_rows.append({
            "root": root, "found": True, "functions": len(order),
            "signature": model.signature(root),
        })
    active = [f for f in findings if not f.suppressed]
    report = {
        "version": DET_BASELINE_VERSION,
        "roots": root_rows,
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "errors": sum(f.severity == "error" for f in active),
            "warnings": sum(f.severity == "warn" for f in active),
            "audited": sum(f.suppressed for f in findings),
        },
    }
    report["_findings"] = findings  # live objects, stripped before JSON
    return report


# ----------------------------------------------------------------------
# Baseline handling (det_baseline.json)
# ----------------------------------------------------------------------

def _det_fingerprint(finding: Finding) -> str:
    from repro.analysis.audit import fingerprint

    return fingerprint(finding)


def load_det_baseline(path: str) -> Dict[str, List[str]]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != DET_BASELINE_VERSION:
        raise ValueError(
            f"determinism baseline {path} has version "
            f"{data.get('version')}, expected {DET_BASELINE_VERSION}")
    return {"audited": list(data.get("audited", []))}


def write_det_baseline(path: str, report: dict) -> None:
    """Snapshot every audited (suppressed) finding fingerprint."""
    audited = sorted({
        _det_fingerprint(f) for f in report["_findings"] if f.suppressed
    })
    payload = {"version": DET_BASELINE_VERSION, "audited": audited}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def det_regressions(report: dict,
                    baseline: Optional[Dict[str, List[str]]] = None,
                    ) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Gate a report against ``det_baseline.json``.

    Returns ``(unaudited, new_audited, vanished)``:

    * *unaudited* — active findings; these always fail, baseline or not.
    * *new_audited* — audited findings whose fingerprint is not in the
      baseline: an annotation nobody reviewed.  Fails.
    * *vanished* — baseline fingerprints with no current finding: either
      genuinely fixed (run ``--update-baseline``) or the analyzer lost
      coverage.  Fails either way so it cannot pass unnoticed.
    """
    expected = set(baseline["audited"]) if baseline else set()
    unaudited = [f for f in report["_findings"] if not f.suppressed]
    current: Dict[str, Finding] = {}
    for finding in report["_findings"]:
        if finding.suppressed:
            current.setdefault(_det_fingerprint(finding), finding)
    new_audited = [f for fp, f in sorted(current.items())
                   if fp not in expected]
    vanished = sorted(expected - set(current))
    return unaudited, new_audited, vanished
