"""Benchmark suite configuration."""

import sys
from pathlib import Path

# Make `common` importable regardless of the pytest invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
