"""Chaos suite for the durable serving gateway.

Acceptance gate (`make chaos-serve`): with seeded delivery faults on the
full fleet (rate 1.0 >= the 30% floor) *and* workers hard-killed
mid-traffic in the nastiest window (update applied, ack never sent),
every acknowledged update must survive — the final worker states must be
bitwise-identical to a fault-free baseline, overload must surface as
explicit retryable rejections (never silent loss), and >= 90% of
services must converge HEALTHY.
"""

import asyncio
import json

import pytest

from repro.obs.events import read_events
from repro.obs.propagate import read_trace_spans
from repro.runtime import (
    FaultInjector,
    GatewayConfig,
    GatewayError,
    GatewayFault,
    ServingGateway,
    TenantPolicy,
)
from repro.runtime.gateway import (
    TrafficConfig,
    ZScoreDetector,
    make_fleet_series,
    read_wal,
    run_traffic,
)

NUM_SERVICES = 8
HISTORY = 96
UPDATES = 40
TOTAL = NUM_SERVICES * UPDATES

# queue_depth stays large so the ladder never reaches DEGRADED: degraded
# accepts depend on real-time queue occupancy, which is exactly the kind
# of wall-clock nondeterminism the bitwise comparison must exclude.
CHAOS_GATEWAY = dict(workers=2, window=16, seed=0, snapshot_every=25,
                     queue_depth=512, ack_timeout=5.0, backoff_base=0.01)


def _fleet():
    fleet = make_fleet_series(NUM_SERVICES, HISTORY, UPDATES, seed=0)
    histories = {sid: series[:HISTORY] for sid, series in fleet.items()}
    streams = {sid: series[HISTORY:] for sid, series in fleet.items()}
    return histories, streams


def _build_gateway(directory, histories, **overrides):
    detector = ZScoreDetector().fit(
        sorted(histories), [histories[sid] for sid in sorted(histories)])
    config = GatewayConfig(**{**CHAOS_GATEWAY, **overrides})
    return ServingGateway(directory, detector, histories, config)


def _run_session(directory, kills=(), fault_plan=None, **overrides):
    """One full gateway lifecycle: start, traffic, verify surface, drain."""
    histories, streams = _fleet()
    gateway = _build_gateway(directory, histories, **overrides)
    for service_id, after_applies in kills:
        gateway.schedule_worker_kill(service_id, after_applies)
    if fault_plan:
        gateway.apply_fault_plan(fault_plan)

    async def session():
        await gateway.start()
        report = await run_traffic(gateway, streams, TrafficConfig(),
                                   faults=fault_plan)
        states = await gateway.collect_states()
        health = await gateway.collect_health()
        status = gateway.status()
        await gateway.drain()
        return report, states, health, status

    return (*asyncio.run(session()), gateway)


def _canonical(states):
    return json.dumps(states, sort_keys=True)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fault-free reference run (same fleet seed, same shard map)."""
    directory = tmp_path_factory.mktemp("serve-baseline")
    report, states, health, status, _ = _run_session(directory)
    assert report.accepted == TOTAL
    assert report.rejections == {} or report.accepted == TOTAL
    assert all(value == "healthy" for value in health.values())
    return {"states": _canonical(states), "accepted": report.accepted}


class TestChaosServe:
    @pytest.mark.parametrize("chaos_seed", [0, 1, 2])
    def test_kills_and_delivery_faults_lose_nothing(self, baseline,
                                                    tmp_path, chaos_seed):
        """The headline gate: every service carries a delivery fault
        (rate 1.0), two shards die mid-traffic after applying but before
        acking, and the final states still match fault-free bitwise."""
        injector = FaultInjector(seed=chaos_seed)
        histories, _ = _fleet()
        plan = injector.plan_gateway_faults(sorted(histories),
                                            fault_rate=1.0, updates=UPDATES)
        assert len(plan) == NUM_SERVICES
        kills = [("svc-0", 30), ("svc-5", 50 + 10 * chaos_seed)]
        report, states, health, status, gateway = _run_session(
            tmp_path, kills=kills, fault_plan=plan)

        # Loss-free: all updates acknowledged, none lost, none silent.
        assert report.accepted == baseline["accepted"] == TOTAL
        assert all(count == UPDATES
                   for count in report.final_sequence.values())
        # Bitwise: snapshot + WAL replay == the uninterrupted run.
        assert _canonical(states) == baseline["states"]
        # At least one armed kill actually fired and was survived.
        respawns = sum(shard["respawns"]
                       for shard in status["shards"].values())
        assert respawns >= 1
        assert all(shard["alive"] for shard in status["shards"].values())
        # Convergence gate: >= 90% of services end HEALTHY.
        healthy = sum(1 for value in health.values() if value == "healthy")
        assert healthy >= 0.9 * NUM_SERVICES
        # Rejections, if any, were explicit retryable verdicts.
        assert set(report.rejections) <= {"backpressure", "refused",
                                          "throttled", "shed"}

    def test_failover_story_lands_in_event_log(self, tmp_path):
        """The kill shows up as worker_failover + wal_replay +
        worker_ready in events.jsonl — the obs report's raw material."""
        report, _, _, _, gateway = _run_session(
            tmp_path, kills=[("svc-0", 20)])
        assert report.accepted == TOTAL
        kinds = [record["kind"]
                 for record in read_events(tmp_path / "events.jsonl")]
        assert "worker_spawn" in kinds
        assert "worker_ready" in kinds
        assert "worker_failover" in kinds
        assert "wal_replay" in kinds
        assert kinds[-1] == "drain_complete"

    def test_trace_trees_complete_across_kill_and_replay(self, tmp_path):
        """Cross-process tracing gate: every acked update's trace tree is
        complete — the gateway submit span and at least one worker span
        share one trace id with explicit parent linkage — even for the
        shard that was hard-killed and WAL-replayed, and the replay
        itself emits spans linked to the original traces."""
        report, _, _, status, gateway = _run_session(
            tmp_path, kills=[("svc-0", 25)])
        assert report.accepted == TOTAL

        submit_spans = {}                      # (service, sequence) -> span
        for span in read_trace_spans(tmp_path / "spans.jsonl"):
            if span["name"] == "gateway.submit":
                attrs = span["attrs"]
                key = (attrs["service"], int(attrs["sequence"]))
                assert key not in submit_spans   # one admission span each
                submit_spans[key] = span

        worker_spans = {}                      # (service, sequence) -> spans
        killed_shard = None
        for shard_id, shard in status["shards"].items():
            if shard["respawns"]:
                killed_shard = shard_id
            for span in read_trace_spans(tmp_path / shard_id / "spans.jsonl"):
                assert span["name"] == "worker.update"
                attrs = span["attrs"]
                key = (attrs["service"], int(attrs["sequence"]))
                worker_spans.setdefault(key, []).append(span)
        assert killed_shard is not None        # the armed kill fired

        # 100% of acked updates: complete tree, one trace id, parented.
        histories, _ = _fleet()
        acked = {(sid, seq) for sid in histories
                 for seq in range(1, UPDATES + 1)}
        assert set(submit_spans) == acked
        assert set(worker_spans) == acked
        for key in acked:
            root = submit_spans[key]
            children = worker_spans[key]
            assert all(c["trace_id"] == root["trace_id"] for c in children)
            assert all(c["parent_span_id"] == root["span_id"]
                       for c in children)
            span_ids = [c["span_id"] for c in children]
            assert len(set(span_ids)) == len(span_ids)

        # The replayed shard re-emitted spans under the original traces.
        replayed = [span for spans in worker_spans.values()
                    for span in spans if span["attrs"]["replay"]]
        assert replayed
        assert all(span["attrs"]["shard"] == killed_shard
                   for span in replayed)
        assert all(span["attrs"]["incarnation"] >= 1 for span in replayed)

    def test_ack_means_journalled_exactly_once(self, tmp_path):
        """Every accepted update is in exactly one WAL record — retries
        and duplicate transmissions never double-journal."""
        injector = FaultInjector(seed=1)
        histories, _ = _fleet()
        plan = injector.plan_gateway_faults(sorted(histories),
                                            fault_rate=1.0, updates=UPDATES)
        report, _, _, status, gateway = _run_session(tmp_path,
                                                     fault_plan=plan)
        assert report.accepted == TOTAL
        journalled = []
        for shard_id in status["shards"]:
            for record in read_wal(tmp_path / shard_id / "wal"):
                journalled.append((record.payload["service"],
                                   record.payload["sequence"]))
        assert len(journalled) == TOTAL
        assert len(set(journalled)) == TOTAL

    def test_overload_rejects_explicitly_and_recovers(self, tmp_path):
        """A queue two entries deep forces the ladder/backpressure path;
        clients retry and every update is still eventually accepted."""
        report, _, _, _, gateway = _run_session(tmp_path, queue_depth=2)
        assert report.accepted == TOTAL
        assert report.retries > 0
        assert sum(report.rejections.values()) == report.retries
        assert set(report.rejections) <= {"backpressure", "refused",
                                          "throttled", "shed"}

    def test_slow_start_fault_delays_but_does_not_lose(self, tmp_path):
        plan = {"svc-2": GatewayFault("worker_slow_start",
                                      delay_seconds=0.4)}
        report, _, health, _, gateway = _run_session(tmp_path,
                                                     fault_plan=plan)
        assert report.accepted == TOTAL
        assert all(value == "healthy" for value in health.values())


class TestGatewayProtocol:
    """Ack-protocol edges on a tiny live gateway."""

    def test_sequence_discipline_and_admission_verdicts(self, tmp_path):
        histories, streams = _fleet()
        histories = {sid: histories[sid] for sid in ("svc-0", "svc-1")}
        streams = {sid: streams[sid] for sid in ("svc-0", "svc-1")}
        detector = ZScoreDetector().fit(
            sorted(histories), [histories[sid] for sid in sorted(histories)])
        tenants = {
            "paid": TenantPolicy("paid", rate=5.0, burst=1.0, priority=1),
            "free": TenantPolicy("free", rate=1e6, burst=1e6, priority=0),
        }
        gateway = ServingGateway(
            tmp_path, detector, histories,
            GatewayConfig(workers=1, window=16, queue_depth=64,
                          ack_timeout=5.0),
            tenants=tenants,
            tenant_of={"svc-0": "paid", "svc-1": "free"},
        )

        async def session():
            await gateway.start()
            rows = streams["svc-0"]

            gap = await gateway.submit("svc-0", rows[1], 2)
            assert (gap.accepted, gap.reason) == (False, "gap")

            first = await gateway.submit("svc-0", rows[0], 1)
            assert (first.accepted, first.reason) == (True, "ok")
            assert gateway.accepted_sequence("svc-0") == 1

            dup = await gateway.submit("svc-0", rows[0], 1)
            assert (dup.accepted, dup.reason) == (True, "duplicate")

            # burst=1 is spent; the next paid update must be throttled
            # with an exact retry_after, and accepted after waiting.
            throttled = await gateway.submit("svc-0", rows[1], 2)
            assert (throttled.accepted, throttled.reason) == \
                (False, "throttled")
            assert throttled.retry_after > 0
            await asyncio.sleep(throttled.retry_after + 0.05)
            retried = await gateway.submit("svc-0", rows[1], 2)
            assert retried.accepted

            # The free tenant's huge bucket is unaffected throughout.
            free = await gateway.submit("svc-1", streams["svc-1"][0], 1)
            assert free.accepted

            with pytest.raises(KeyError):
                await gateway.submit("svc-9", rows[0], 1)
            with pytest.raises(ValueError):
                await gateway.submit("svc-0", rows[0], 0)

            gateway._draining = True
            draining = await gateway.submit("svc-0", rows[2], 3)
            assert (draining.accepted, draining.reason) == \
                (False, "draining")
            gateway._draining = False

            await gateway.drain()
            with pytest.raises(GatewayError):
                await gateway.submit("svc-0", rows[2], 3)

        asyncio.run(session())
