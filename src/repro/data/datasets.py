"""Dataset profiles reproducing the character of the paper's benchmarks.

The paper evaluates on SMD, J-D1, J-D2 (proprietary), SMAP and MC
(proprietary).  Offline we cannot ship any of them, so each profile below is
a synthetic stand-in engineered to match the properties the paper's analysis
actually uses:

=========  ==========  =============  =====================================
profile    diversity   anomaly ratio  anomaly character
=========  ==========  =============  =====================================
SMD        very high   4.16%          mostly context anomalies
J-D1       moderate    5.25%          mixed
J-D2       very low    20.26%         mixed, patterns nearly identical
SMAP       moderate    13.13%         mostly point anomalies
MC         moderate    3.6%           substantial point anomalies
=========  ==========  =============  =====================================

Diversity (Fig. 5a) is controlled by drawing each service's normal pattern
either independently from wide ranges (high diversity) or as a small
perturbation of one shared template (low diversity).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

import numpy as np

from repro.data.anomalies import AnomalyKind, InjectionContext, default_mix
from repro.data.generators import ServiceData, generate_service
from repro.data.patterns import perturb_pattern, random_pattern

__all__ = ["DatasetProfile", "Dataset", "PROFILES", "load_dataset"]


@dataclass(frozen=True)
class DatasetProfile:
    """Recipe for one synthetic benchmark dataset."""

    name: str
    num_services: int
    num_features: int
    train_length: int
    test_length: int
    anomaly_ratio: float
    diversity: float
    point_heavy: bool = False
    pattern_family_scale: float = 0.05
    base_seed: int = 7

    def anomaly_mix(self) -> Dict[AnomalyKind, float]:
        return default_mix(point_heavy=self.point_heavy)


@dataclass
class Dataset:
    """A generated dataset: a list of services plus its profile."""

    profile: DatasetProfile
    services: List[ServiceData] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.profile.name

    def __len__(self) -> int:
        return len(self.services)

    def __iter__(self):
        return iter(self.services)

    def __getitem__(self, index: int) -> ServiceData:
        return self.services[index]

    def groups(self, group_size: int = 10) -> List[List[ServiceData]]:
        """Paper protocol: every ``group_size`` subsets share one model."""
        return [
            self.services[i:i + group_size]
            for i in range(0, len(self.services), group_size)
        ]

    def service(self, service_id: str) -> ServiceData:
        for item in self.services:
            if item.service_id == service_id:
                return item
        raise KeyError(service_id)


# The paper's datasets, downsized for CPU-scale runs: 10 services suffice
# for one unified-model group, 20 allow the transfer experiment (train on
# group 0, test on group 1).  Lengths keep ~2k points per split.
PROFILES: Dict[str, DatasetProfile] = {
    "smd": DatasetProfile(
        name="smd", num_services=20, num_features=8,
        train_length=2048, test_length=2048,
        anomaly_ratio=0.0416, diversity=1.0, base_seed=11,
    ),
    "j-d1": DatasetProfile(
        name="j-d1", num_services=20, num_features=8,
        train_length=2048, test_length=2048,
        anomaly_ratio=0.0525, diversity=0.45, base_seed=23,
    ),
    "j-d2": DatasetProfile(
        name="j-d2", num_services=20, num_features=8,
        train_length=2048, test_length=2048,
        anomaly_ratio=0.2026, diversity=0.05, base_seed=37,
    ),
    "smap": DatasetProfile(
        name="smap", num_services=20, num_features=4,
        train_length=2048, test_length=2048,
        anomaly_ratio=0.1313, diversity=0.5, point_heavy=True, base_seed=53,
    ),
    "mc": DatasetProfile(
        name="mc", num_services=20, num_features=6,
        train_length=2048, test_length=2048,
        anomaly_ratio=0.036, diversity=0.5, point_heavy=True, base_seed=71,
    ),
}


def load_dataset(name: str, num_services: int | None = None,
                 train_length: int | None = None,
                 test_length: int | None = None,
                 seed: int | None = None) -> Dataset:
    """Generate a dataset from a registered profile.

    Overrides (service count, lengths, seed) support fast test-suite runs;
    benchmarks use the defaults.
    """
    key = name.lower()
    if key not in PROFILES:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(PROFILES)}")
    profile = PROFILES[key]
    overrides = {}
    if num_services is not None:
        overrides["num_services"] = num_services
    if train_length is not None:
        overrides["train_length"] = train_length
    if test_length is not None:
        overrides["test_length"] = test_length
    if seed is not None:
        overrides["base_seed"] = seed
    if overrides:
        profile = replace(profile, **overrides)

    master = np.random.default_rng(profile.base_seed)
    template = None
    if profile.diversity < 0.2:
        # Low-diversity regime: all services perturb one shared template.
        template = random_pattern(master, profile.num_features, diversity=0.6)

    # Draw every pattern first so the anomaly injectors know which periods
    # are "normal for some other service" (the pattern-confusion anomalies).
    seeds = [int(master.integers(0, 2**63 - 1)) for _ in range(profile.num_services)]
    patterns = []
    for seed_value in seeds:
        rng = np.random.default_rng(seed_value)
        if template is not None:
            patterns.append(perturb_pattern(template, rng,
                                            scale=profile.pattern_family_scale))
        else:
            patterns.append(random_pattern(rng, profile.num_features,
                                           diversity=profile.diversity))
    periods_per_service = [
        tuple(p for p in pattern.dominant_periods() if np.isfinite(p))
        for pattern in patterns
    ]

    services = []
    for index, (seed_value, pattern) in enumerate(zip(seeds, patterns)):
        rng = np.random.default_rng(seed_value + 1)
        foreign = tuple(
            period
            for other, periods in enumerate(periods_per_service)
            if other != index
            for period in periods
        )
        context = InjectionContext(
            foreign_periods=foreign,
            own_periods=periods_per_service[index],
        )
        services.append(
            generate_service(
                service_id=f"{profile.name}-{index:02d}",
                pattern=pattern,
                train_length=profile.train_length,
                test_length=profile.test_length,
                anomaly_ratio=profile.anomaly_ratio,
                anomaly_mix=profile.anomaly_mix(),
                rng=rng,
                context=context,
            )
        )
    return Dataset(profile=profile, services=services)
