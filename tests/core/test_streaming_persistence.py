"""Streaming detection and detector persistence."""

import numpy as np
import pytest

from repro.core import (
    MaceConfig,
    MaceDetector,
    StreamingDetector,
    load_detector,
    save_detector,
)


def _fitted_detector(dataset):
    config = MaceConfig(window=40, num_bases=6, channels=4, epochs=3,
                        train_stride=4, gamma_time=5, gamma_freq=5,
                        kernel_freq=4, kernel_time=3)
    detector = MaceDetector(config)
    return detector.fit([s.service_id for s in dataset],
                        [s.train for s in dataset])


class TestPersistence:
    def test_roundtrip_scores_identical(self, tiny_dataset, tmp_path):
        detector = _fitted_detector(tiny_dataset)
        service = tiny_dataset[0]
        original = detector.score(service.service_id, service.test)
        manifest = save_detector(detector, tmp_path / "model")
        restored = load_detector(manifest)
        clone = restored.score(service.service_id, service.test)
        np.testing.assert_allclose(clone, original, atol=1e-10)

    def test_restored_detector_keeps_config(self, tiny_dataset, tmp_path):
        detector = _fitted_detector(tiny_dataset)
        save_detector(detector, tmp_path / "model")
        restored = load_detector(tmp_path / "model")
        assert restored.config == detector.config

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_detector(MaceDetector(), tmp_path / "model")

    def test_bad_manifest_rejected(self, tmp_path):
        (tmp_path / "model.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            load_detector(tmp_path / "model")


class TestStreaming:
    def test_stream_matches_batch_tail_scores(self, tiny_dataset):
        detector = _fitted_detector(tiny_dataset)
        service = tiny_dataset[0]
        stream = StreamingDetector(detector, window=40, q=1e-2)
        stream.start_service(service.service_id, service.train)
        outcomes = [stream.update(service.service_id, row)
                    for row in service.test[:100]]
        assert all(o.ready for o in outcomes)  # buffer pre-filled by history
        scores = np.array([o.score for o in outcomes])
        assert np.isfinite(scores).all() and np.all(scores >= 0)

    def test_alerts_fire_on_injected_anomaly(self, tiny_dataset):
        detector = _fitted_detector(tiny_dataset)
        service = tiny_dataset[0]
        stream = StreamingDetector(detector, window=40, q=1e-2)
        stream.start_service(service.service_id, service.train)
        test = service.test.copy()
        test[60:63] += 8.0  # blatant spike
        alerts = [stream.update(service.service_id, row).is_alert
                  for row in test[:120]]
        assert any(alerts[58:70])

    def test_unknown_service(self, tiny_dataset):
        detector = _fitted_detector(tiny_dataset)
        stream = StreamingDetector(detector, window=40)
        with pytest.raises(KeyError):
            stream.update("nope", np.zeros(8))

    def test_short_history_rejected(self, tiny_dataset):
        detector = _fitted_detector(tiny_dataset)
        stream = StreamingDetector(detector, window=40)
        with pytest.raises(ValueError):
            stream.start_service("svc", np.zeros((30, 8)))

    def test_feature_mismatch_rejected(self, tiny_dataset):
        detector = _fitted_detector(tiny_dataset)
        service = tiny_dataset[0]
        stream = StreamingDetector(detector, window=40)
        stream.start_service(service.service_id, service.train)
        with pytest.raises(ValueError):
            stream.update(service.service_id, np.zeros(3))

    def test_threshold_accessor(self, tiny_dataset):
        detector = _fitted_detector(tiny_dataset)
        service = tiny_dataset[0]
        stream = StreamingDetector(detector, window=40)
        stream.start_service(service.service_id, service.train)
        assert np.isfinite(stream.threshold(service.service_id))
