"""Per-service health tracking with an exponential-backoff circuit breaker.

One broken service — a model path that throws, or produces NaN scores for
a shape of data it never saw in training — must not take down the fleet
loop.  Each service carries a small state machine:

``HEALTHY``
    Scores flow through the real model; the SPOT threshold adapts.
``DEGRADED``
    Recent failures (below the trip threshold) or heavily sanitized
    inputs.  The real model still scores, but alerts are marked as coming
    from a degraded stream.
``QUARANTINED``
    The breaker tripped: ``failure_threshold`` consecutive model failures.
    Scoring is routed to the cheap fallback path and the real model is
    only *probed* — once per backoff window, with the window doubling on
    every failed probe (capped at ``max_backoff``).  ``probe_successes``
    consecutive successful probes close the breaker again.

Time is measured in update ticks, not wall-clock seconds: the runtime is
driven point-by-point, so tick-based backoff is deterministic and
testable, and maps 1:1 to wall time for a fixed sampling rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["HealthState", "BreakerConfig", "ServiceHealth"]


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker policy.

    ``failure_threshold`` consecutive failures trip the breaker;
    ``recovery_successes`` consecutive clean scores bring a DEGRADED
    service back to HEALTHY; ``probe_successes`` consecutive successful
    probes close an open breaker.  ``base_backoff`` is the number of
    update ticks before the first probe, doubling per failed probe up to
    ``max_backoff``.
    """

    failure_threshold: int = 3
    recovery_successes: int = 5
    probe_successes: int = 2
    base_backoff: int = 8
    max_backoff: int = 256

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_successes < 1 or self.probe_successes < 1:
            raise ValueError("success counts must be >= 1")
        if not 1 <= self.base_backoff <= self.max_backoff:
            raise ValueError("need 1 <= base_backoff <= max_backoff")


class ServiceHealth:
    """State machine + breaker for one service.

    The serving loop drives it with exactly four calls per update:
    :meth:`tick` (advance time), :meth:`allow_model` (route decision),
    then :meth:`record_success` / :meth:`record_failure` with the outcome
    of whichever path ran.
    """

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config or BreakerConfig()
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.total_failures = 0
        self.transitions: list = []          # (tick, from_state, to_state)
        self._tick = 0
        self._backoff = self.config.base_backoff
        self._next_probe_tick: int | None = None
        self._probing = False

    def tick(self) -> int:
        """Advance the update clock by one; returns the new tick."""
        self._tick += 1
        return self._tick

    @property
    def tick_count(self) -> int:
        """Current update tick (number of :meth:`tick` calls so far)."""
        return self._tick

    @property
    def last_transition_tick(self) -> int:
        """Tick of the most recent state transition (0 if none yet)."""
        return self.transitions[-1][0] if self.transitions else 0

    @property
    def transition_count(self) -> int:
        """Total number of recorded state transitions."""
        return len(self.transitions)

    @property
    def ticks_in_state(self) -> int:
        """How many ticks the service has spent in its current state."""
        return self._tick - self.last_transition_tick

    def transitions_in_window(self, window: int) -> int:
        """Transitions recorded in the most recent ``window`` ticks.

        The flapping-suppression input: a service that keeps bouncing
        between states faster than remediation can verify it should be
        escalated, not re-remediated.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        horizon = self._tick - window
        return sum(1 for tick, _, _ in reversed(self.transitions)
                   if tick > horizon)

    def allow_model(self) -> bool:
        """Should this update try the real model path?

        Always true outside quarantine.  In quarantine, true only when the
        backoff window has elapsed — that attempt is a *probe* and its
        outcome decides whether the breaker closes or the backoff doubles.
        """
        if self.state is not HealthState.QUARANTINED:
            return True
        self._probing = (self._next_probe_tick is not None
                         and self._tick >= self._next_probe_tick)
        return self._probing

    @property
    def probing(self) -> bool:
        """True when the current model attempt is a quarantine probe."""
        return self.state is HealthState.QUARANTINED and self._probing

    def record_success(self) -> None:
        """The model path produced a finite score this update."""
        self.consecutive_failures = 0
        self.consecutive_successes += 1
        if self.state is HealthState.QUARANTINED:
            if self.consecutive_successes >= self.config.probe_successes:
                self._transition(HealthState.DEGRADED)
                self._backoff = self.config.base_backoff
                self._next_probe_tick = None
                # Probe successes close the breaker, but they must not
                # count toward the HEALTHY dwell: the service still has to
                # earn `recovery_successes` fresh successes in DEGRADED.
                self.consecutive_successes = 0
            else:
                # More probes needed: allow the very next update to probe
                # again rather than waiting out another backoff window.
                self._next_probe_tick = self._tick + 1
        elif self.state is HealthState.DEGRADED:
            if self.consecutive_successes >= self.config.recovery_successes:
                self._transition(HealthState.HEALTHY)
        self._probing = False

    def record_failure(self) -> None:
        """The model path raised or produced a non-finite score."""
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.state is HealthState.QUARANTINED:
            # Failed probe: double the backoff and schedule the next one.
            self._backoff = min(self._backoff * 2, self.config.max_backoff)
            self._next_probe_tick = self._tick + self._backoff
        elif self.consecutive_failures >= self.config.failure_threshold:
            self._transition(HealthState.QUARANTINED)
            self._backoff = self.config.base_backoff
            self._next_probe_tick = self._tick + self._backoff
        elif self.state is HealthState.HEALTHY:
            self._transition(HealthState.DEGRADED)
        self._probing = False

    def reset_probe(self) -> None:
        """Collapse the probe backoff and allow the next update to probe.

        The remediation layer's ``reset_breaker`` action: after acting on
        the suspected root cause it wants an immediate re-probe instead of
        waiting out a (possibly maxed-out) backoff window.  Outside
        quarantine this only resets the backoff bookkeeping.
        """
        self._backoff = self.config.base_backoff
        self.consecutive_failures = 0
        if self.state is HealthState.QUARANTINED:
            self._next_probe_tick = self._tick + 1

    def force_quarantine(self) -> None:
        """Quarantine the service regardless of its failure counters.

        The terminal escalation rung (``quarantine_and_page``): scoring is
        routed to the fallback path and the model is only re-admitted via
        the normal probe ladder.
        """
        if self.state is not HealthState.QUARANTINED:
            self._transition(HealthState.QUARANTINED)
            self._backoff = self.config.base_backoff
            self._next_probe_tick = self._tick + self._backoff
        self.consecutive_successes = 0

    def note_degraded_input(self) -> None:
        """Sanitizer had to fabricate data (gap) — degrade a healthy service."""
        if self.state is HealthState.HEALTHY:
            self._transition(HealthState.DEGRADED)
        self.consecutive_successes = 0

    def _transition(self, to_state: HealthState) -> None:
        if to_state is self.state:
            return
        self.transitions.append((self._tick, self.state, to_state))
        self.state = to_state
