"""Closed-loop remediation: diagnosis, policy, actions, controller.

The drill suite (tests/runtime/test_drill.py) proves the end-to-end
convergence claim; this file pins down each stage's contract in
isolation plus the controller's incident state machine on small scripted
runtimes.
"""

import numpy as np
import pytest

from repro.obs.events import EventLog, install_event_log
from repro.runtime import BreakerConfig, ServingRuntime
from repro.runtime.faults import ActionFault
from repro.runtime.health import HealthState
from repro.runtime.remediation import (
    Action,
    ActionContext,
    ActionOutcome,
    ActionRegistrationError,
    ActionRunner,
    AlertClass,
    DiagnosisConfig,
    EvidenceWindow,
    IncidentState,
    PolicyConfig,
    PolicyEngine,
    RemediationConfig,
    RemediationController,
    TERMINAL_ACTION,
    attribute_drift,
    create_action,
    diagnose,
    register_action,
    registered_actions,
)
from tests.runtime.test_serving import ScriptedDetector

WINDOW = 20


def _history(seed=0, length=200, features=2):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.stack([np.sin(2 * np.pi * t / 16),
                     0.5 * np.cos(2 * np.pi * t / 32)], axis=1)
    return base[:, :features] + 0.1 * rng.normal(size=(length, features))


class _Update:
    """Minimal StreamUpdate stand-in for EvidenceWindow tests."""

    def __init__(self, sanitized=False, ready=True, is_alert=False,
                 used_fallback=False, score=1.0):
        self.sanitized = sanitized
        self.ready = ready
        self.is_alert = is_alert
        self.used_fallback = used_fallback
        self.score = score


class TestEvidenceWindow:
    def test_fractions(self):
        window = EvidenceWindow(8)
        for _ in range(4):
            window.record(_Update(sanitized=True, is_alert=True))
        for _ in range(4):
            window.record(_Update())
        assert window.repair_fraction == 0.5
        assert window.alert_fraction == 0.5
        assert window.ticks == 8

    def test_score_baseline_ignores_fallback_scores(self):
        window = EvidenceWindow(8)
        window.record(_Update(score=1.0))
        window.record(_Update(score=3.0))
        window.record(_Update(score=100.0, used_fallback=True))
        assert window.score_baseline() == 2.0

    def test_empty_baseline_is_none(self):
        assert EvidenceWindow(8).score_baseline() is None


class TestDiagnosis:
    def _evidence(self, repaired=0, alerts=0, total=40):
        window = EvidenceWindow(total)
        for index in range(total):
            window.record(_Update(sanitized=index < repaired,
                                  is_alert=index < alerts))
        return window

    def test_repair_fraction_reads_as_data_quality(self):
        diagnosis = diagnose(self._evidence(repaired=20), np.zeros(2), 1.0)
        assert diagnosis.alert_class is AlertClass.DATA_QUALITY
        assert "sanitizer repaired" in diagnosis.reason

    def test_spectral_drift_reads_as_model_staleness(self):
        diagnosis = diagnose(self._evidence(), np.array([5.0, 3.0]), 1.0)
        assert diagnosis.alert_class is AlertClass.MODEL_STALENESS
        assert diagnosis.drift_ratio == pytest.approx(4.0)
        # Drift attribution ranks feature 0 first.
        assert diagnosis.top_features[0][0] == 0

    def test_clean_drift_free_alerts_read_as_storm(self):
        diagnosis = diagnose(self._evidence(alerts=20), np.zeros(2), 1.0)
        assert diagnosis.alert_class is AlertClass.ANOMALY_STORM

    def test_no_evidence_reads_unknown(self):
        diagnosis = diagnose(self._evidence(), np.zeros(2), 1.0)
        assert diagnosis.alert_class is AlertClass.UNKNOWN

    def test_payload_is_jsonable(self):
        import json

        payload = diagnose(self._evidence(repaired=40),
                           np.array([1.0, 2.0]), 1.0).to_payload()
        assert json.dumps(payload)
        assert payload["alert_class"] == "data_quality"

    def test_attribute_drift_shares(self):
        top = attribute_drift(np.array([3.0, 1.0, 0.0]), top=2)
        assert [feature for feature, _ in top] == [0, 1]
        assert top[0][1] == pytest.approx(0.75)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DiagnosisConfig(window=2)
        with pytest.raises(ValueError):
            DiagnosisConfig(repair_fraction=0.0)
        with pytest.raises(ValueError):
            DiagnosisConfig(drift_threshold=-1.0)


class TestPolicy:
    def _engine(self, **overrides):
        defaults = dict(cooldown_ticks=10, max_concurrent_actions=2,
                        flap_window=50, flap_threshold=4)
        defaults.update(overrides)
        return PolicyEngine(PolicyConfig(**defaults))

    def test_ladders_must_end_terminal(self):
        with pytest.raises(ValueError):
            PolicyConfig(ladders={AlertClass.UNKNOWN: ("reset_breaker",)})

    def test_grants_first_rung(self):
        decision = self._engine().decide("svc", 10, AlertClass.DATA_QUALITY,
                                         0, 0)
        assert decision.allowed
        assert decision.action == "recalibrate_sanitizer"

    def test_cooldown_defers_then_releases(self):
        engine = self._engine()
        engine.acquire("svc", 10)
        engine.release("svc")
        held = engine.decide("svc", 15, AlertClass.DATA_QUALITY, 0, 0)
        assert not held.allowed and "cooldown" in held.reason
        assert engine.decide("svc", 20, AlertClass.DATA_QUALITY, 0, 0).allowed

    def test_terminal_rung_bypasses_cooldown(self):
        engine = self._engine()
        engine.acquire("svc", 10)
        engine.release("svc")
        decision = engine.decide("svc", 11, AlertClass.ANOMALY_STORM, 1, 0)
        assert decision.allowed
        assert decision.action == TERMINAL_ACTION

    def test_blast_radius_caps_concurrency(self):
        engine = self._engine()
        engine.acquire("a", 1)
        engine.acquire("b", 1)
        decision = engine.decide("c", 1, AlertClass.UNKNOWN, 0, 0)
        assert not decision.allowed and "blast radius" in decision.reason
        engine.release("a")
        assert engine.decide("c", 2, AlertClass.UNKNOWN, 0, 0).allowed
        assert engine.violations == 0

    def test_flapping_escalates_to_terminal(self):
        decision = self._engine().decide("svc", 100, AlertClass.DATA_QUALITY,
                                         0, recent_transitions=5)
        assert decision.escalate
        assert decision.action == TERMINAL_ACTION

    def test_exhausted_ladder_denied(self):
        ladder = PolicyConfig().ladder(AlertClass.ANOMALY_STORM)
        decision = self._engine().decide("svc", 1, AlertClass.ANOMALY_STORM,
                                         len(ladder), 0)
        assert not decision.allowed and "exhausted" in decision.reason

    def test_self_audit_counts_violations(self):
        engine = self._engine(max_concurrent_actions=1)
        engine.acquire("a", 1)
        engine.acquire("b", 1)      # beyond the cap: the audit must notice
        assert engine.violations == 1
        assert engine.stats()["violations"] == 1


class TestActionRegistry:
    def test_builtin_actions_registered(self):
        names = registered_actions()
        for name in ("recalibrate_sanitizer", "reset_breaker",
                     "hot_swap_detector", "quarantine_and_page"):
            assert name in names

    def test_missing_timeout_rejected(self):
        with pytest.raises(ActionRegistrationError):
            @register_action
            class NoTimeout(Action):          # noqa: REP111 - negative case
                name = "no-timeout"
                idempotent = True

    def test_bool_timeout_rejected(self):
        with pytest.raises(ActionRegistrationError):
            @register_action
            class BoolTimeout(Action):        # noqa: REP111 - negative case
                name = "bool-timeout"
                timeout_ticks = True
                idempotent = True

    def test_non_idempotent_rejected(self):
        with pytest.raises(ActionRegistrationError):
            @register_action
            class NotIdempotent(Action):      # noqa: REP111 - negative case
                name = "not-idempotent"
                timeout_ticks = 4

    def test_duplicate_name_rejected(self):
        with pytest.raises(ActionRegistrationError):
            @register_action
            class Duplicate(Action):
                name = "reset_breaker"
                timeout_ticks = 4
                idempotent = True

    def test_unknown_action_name(self):
        with pytest.raises(KeyError):
            create_action("definitely-not-registered")


class _SlowAction(Action):
    """Test-only action that stays PENDING for a fixed number of polls."""

    name = "slow-test-action"
    timeout_ticks = 3
    idempotent = True

    def __init__(self, pending_polls=10):
        self.pending_polls = pending_polls
        self.rolled_back = False

    def start(self, ctx):
        return ActionOutcome.PENDING

    def poll(self, ctx):
        self.pending_polls -= 1
        if self.pending_polls <= 0:
            return ActionOutcome.OK
        return ActionOutcome.PENDING

    def rollback(self, ctx):
        self.rolled_back = True


class TestActionRunner:
    def _ctx(self, service="svc", tick=10):
        return ActionContext(runtime=None, service_id=service, tick=tick)

    def test_timeout_fires_after_declared_budget(self):
        runner = ActionRunner()
        outcome, _ = runner.launch(_SlowAction(), self._ctx(tick=10))
        assert outcome is ActionOutcome.PENDING
        assert runner.step("svc", 11) is ActionOutcome.PENDING
        assert runner.step("svc", 13) is ActionOutcome.TIMED_OUT
        assert runner.timed_out == 1
        assert runner.step("svc", 14) is None     # left flight

    def test_pending_action_completes(self):
        runner = ActionRunner()
        action = _SlowAction(pending_polls=2)
        outcome, _ = runner.launch(action, self._ctx(tick=10))
        assert outcome is ActionOutcome.PENDING
        assert runner.step("svc", 11) is ActionOutcome.PENDING
        assert runner.step("svc", 12) is ActionOutcome.OK

    def test_one_action_per_service(self):
        runner = ActionRunner()
        runner.launch(_SlowAction(), self._ctx(tick=10))
        with pytest.raises(RuntimeError):
            runner.launch(_SlowAction(), self._ctx(tick=11))

    def test_action_fail_fault_consumed_once(self):
        runner = ActionRunner({"svc": ActionFault("action_fail")})
        outcome, _ = runner.launch(_SlowAction(pending_polls=1),
                                   self._ctx(tick=10))
        assert outcome is ActionOutcome.FAILED
        # One-shot fault: the retry executes for real.
        outcome, _ = runner.launch(_SlowAction(pending_polls=1),
                                   self._ctx(tick=20))
        assert outcome is ActionOutcome.PENDING

    def test_action_hang_fault_pins_until_timeout(self):
        runner = ActionRunner({"svc": ActionFault("action_hang")})
        action = _SlowAction(pending_polls=1)      # would finish in 1 poll
        outcome, running = runner.launch(action, self._ctx(tick=10))
        assert outcome is ActionOutcome.PENDING and running.hung
        assert runner.step("svc", 12) is ActionOutcome.PENDING
        assert runner.step("svc", 13) is ActionOutcome.TIMED_OUT

    def test_recovery_relapse_not_consumed_by_runner(self):
        runner = ActionRunner({"svc": ActionFault("recovery_relapse")})
        outcome, _ = runner.launch(_SlowAction(pending_polls=1),
                                   self._ctx(tick=10))
        assert outcome is ActionOutcome.PENDING    # fault left for verify


class _Loop:
    """A scripted single-service loop driving the controller."""

    def __init__(self, config=None, action_faults=None, retrain=None):
        self.history = _history()
        self.detector = ScriptedDetector().fit(["svc"], [self.history])
        self.runtime = ServingRuntime(
            self.detector, window=WINDOW, q=1e-2,
            breaker_config=BreakerConfig(failure_threshold=3,
                                         recovery_successes=3,
                                         probe_successes=2, base_backoff=2,
                                         max_backoff=16))
        self.runtime.start_service("svc", self.history)
        self.controller = RemediationController(
            self.runtime, config=config or self._config(),
            action_faults=action_faults, retrain=retrain)
        self.controller.watch("svc", history=self.history)
        self.step_index = 0

    @staticmethod
    def _config(**overrides):
        defaults = dict(
            diagnosis=DiagnosisConfig(window=24),
            policy=PolicyConfig(cooldown_ticks=4, max_concurrent_actions=2,
                                flap_window=100, flap_threshold=30),
            verify_patience=20, verify_dwell=4, degraded_patience=10,
            history_rows=120)
        defaults.update(overrides)
        return RemediationConfig(**defaults)

    def run(self, ticks, fail=False, drop=False):
        rng = np.random.default_rng(99)
        for _ in range(ticks):
            self.detector.fail = fail
            row = (self.history[self.step_index % len(self.history)]
                   + 0.05 * rng.normal(size=2))
            self.step_index += 1
            self.controller.step("svc", None if drop else row)

    @property
    def incidents(self):
        return self.controller.incidents


class TestControllerLoop:
    def test_breaker_trip_opens_resolves_and_verifies(self):
        loop = _Loop()
        loop.run(30)
        loop.run(12, fail=True)      # sustained outage trips the breaker
        loop.run(60)                 # outage over: loop must converge
        assert len(loop.incidents) == 1
        incident = loop.incidents[0]
        assert incident.trigger == "breaker_trip"
        assert incident.state is IncidentState.RESOLVED
        assert incident.actions, "no remediation action ran"
        assert all(outcome == "ok" for _, outcome in incident.actions)
        assert loop.runtime.health("svc").state is HealthState.HEALTHY
        assert loop.controller.policy.violations == 0

    def test_degraded_persistence_opens_data_quality_incident(self):
        loop = _Loop()
        loop.run(30)
        loop.run(25, drop=True)      # every sample dropped in transport
        loop.run(60)
        assert loop.incidents, "sustained degraded input never escalated"
        incident = loop.incidents[0]
        assert incident.trigger == "degraded_persist"
        assert incident.diagnosis.alert_class is AlertClass.DATA_QUALITY
        assert incident.state is IncidentState.RESOLVED

    def test_failed_actions_climb_ladder_to_escalation(self):
        loop = _Loop()
        loop.run(30)
        loop.run(300, fail=True)     # permanent outage: remedies cannot hold
        incident = loop.incidents[0]
        assert incident.state is IncidentState.ESCALATED
        # The ladder was climbed: several distinct remedies were tried and
        # the terminal hand-off ran last.
        names = [name for name, _ in incident.actions]
        assert names[-1] == "quarantine_and_page"
        assert len(set(names)) >= 2
        # Escalated service is parked: the human owns it, no new incidents.
        loop.run(50, fail=True)
        assert len(loop.incidents) == 1
        # Until acknowledged, at which point the loop re-arms.
        loop.controller.acknowledge("svc")
        loop.run(80)
        assert loop.runtime.health("svc").state is HealthState.HEALTHY

    def test_action_fault_rolls_back_then_retries(self):
        log = EventLog()
        previous = install_event_log(log)
        try:
            loop = _Loop(action_faults={"svc": ActionFault("action_fail")})
            loop.run(30)
            loop.run(12, fail=True)
            loop.run(80)
        finally:
            install_event_log(previous)
        incident = loop.incidents[0]
        assert incident.state is IncidentState.RESOLVED
        outcomes = [outcome for _, outcome in incident.actions]
        assert "failed" in outcomes          # the sabotaged first attempt
        assert outcomes[-1] == "ok"
        assert log.events("action_rollback"), "failed action never rolled back"
        assert log.events("remediation_verified")

    def test_report_shape(self):
        loop = _Loop()
        loop.run(30)
        loop.run(12, fail=True)
        loop.run(60)
        report = loop.controller.report()
        assert report["incidents"] == 1
        assert report["by_state"] == {"resolved": 1}
        assert report["policy"]["violations"] == 0
        assert report["parked_services"] == []


class TestSloAttachment:
    """SloEngine burns are a first-class incident source."""

    def _burning_engine(self, objective):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.slo import BurnWindow, SloEngine

        registry = MetricsRegistry()
        histogram = registry.histogram("gateway.ack_seconds")
        engine = SloEngine(
            [objective], registry=registry,
            events=EventLog(clock=lambda: 0.0),
            windows=(BurnWindow("fast", short_ticks=2, long_ticks=4,
                                burn_threshold=10.0),))
        return engine, histogram

    def test_burn_opens_slo_incident_once(self):
        from repro.obs.slo import SloObjective

        loop = _Loop()
        engine, histogram = self._burning_engine(
            SloObjective("ack-p99", "latency", "gateway.ack_seconds",
                         target=0.99, threshold=0.05, service="svc"))
        loop.controller.attach_slo(engine)
        for tick in range(1, 12):
            histogram.observe(0.2)          # every ack blows the budget
            engine.step(tick)
        incidents = loop.incidents
        assert len(incidents) == 1          # active incident absorbs more
        assert incidents[0].trigger == "slo_burn"
        assert incidents[0].service_id == "svc"
        burns = loop.controller.registry.counter("remediation.slo_burns",
                                                 objective="ack-p99")
        assert burns.value >= 1.0

    def test_unattributed_burn_counts_but_opens_nothing(self):
        from repro.obs.slo import SloObjective

        loop = _Loop()
        engine, histogram = self._burning_engine(
            SloObjective("fleet-p99", "latency", "gateway.ack_seconds",
                         target=0.99, threshold=0.05))  # no service
        loop.controller.attach_slo(engine)
        for tick in range(1, 12):
            histogram.observe(0.2)
            engine.step(tick)
        assert loop.incidents == []
        burns = loop.controller.registry.counter("remediation.slo_burns",
                                                 objective="fleet-p99")
        assert burns.value >= 1.0


class TestRemediationConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            RemediationConfig(verify_patience=0)
        with pytest.raises(ValueError):
            RemediationConfig(drift_factor=0.0)
        with pytest.raises(ValueError):
            RemediationConfig(history_rows=1)
        with pytest.raises(ValueError):
            RemediationConfig(degraded_patience=0)
