"""DCdetector-lite (Yang et al., KDD 2023).

The original learns permutation-invariant representations with a dual
attention design — a patch-wise branch and an in-patch branch — trained
purely contrastively (no reconstruction): on normal data the two branches'
attention distributions agree, so at test time their discrepancy is the
anomaly score.  This reduction keeps the dual branch + pure contrastive KL
structure with single attention blocks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spec import TensorSpec, child_contract
from repro.baselines.base import BaselineConfig, NeuralWindowDetector
from repro.nn.modules.attention import MultiheadSelfAttention
from repro.nn.modules.base import Module
from repro.nn.modules.linear import Linear
from repro.nn.tensor import Tensor

__all__ = ["DcDetectorModel", "DcDetector"]


class DcDetectorModel(Module):
    """Dual-branch attention producing two per-timestep distributions."""

    def __init__(self, window: int, num_features: int, dim: int = 16,
                 heads: int = 4, patch: int = 5,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if window % patch:
            raise ValueError("window must divide evenly into patches")
        self.patch = patch
        self.window = window
        self.embed_point = Linear(num_features, dim, rng=rng)
        self.embed_patch = Linear(num_features * patch, dim, rng=rng)
        # The contrastive objective reads only the attention maps, so the
        # value/output projections would be dead parameters (GF301).
        self.point_attention = MultiheadSelfAttention(dim, heads, rng=rng,
                                                      attention_only=True)
        self.patch_attention = MultiheadSelfAttention(dim, heads, rng=rng,
                                                      attention_only=True)

    def forward(self, windows: Tensor):
        batch, window, features = windows.shape
        point_embedded = self.embed_point(windows)
        point_assoc = self.point_attention(point_embedded)
        patches = windows.reshape(batch, window // self.patch,
                                  self.patch * features)
        patch_embedded = self.embed_patch(patches)
        patch_assoc = self.patch_attention(patch_embedded)
        return point_assoc, patch_assoc

    def contract(self, spec: TensorSpec):
        spec.require_ndim(3, "DcDetectorModel")
        spec.require_axis(1, self.window, "DcDetectorModel", "window")
        point = child_contract(
            "point_attention", self.point_attention,
            child_contract("embed_point", self.embed_point, spec),
        )
        patches = spec.with_shape((
            spec.shape[0], spec.shape[1] // self.patch,
            spec.shape[2] * self.patch,
        ))
        patch = child_contract(
            "patch_attention", self.patch_attention,
            child_contract("embed_patch", self.embed_patch, patches),
        )
        return point, patch

    def aligned_distributions(self, point_assoc, patch_assoc):
        """Upsample the patch attention rows to per-timestep resolution.

        Returns a stochastic row distribution of shape ``(B, H, T, T)``.
        Index-based so it works on Tensors as well as arrays: a Tensor
        input keeps its gradient path into the patch branch (repeating via
        ``.data`` would silently freeze ``embed_patch``/``patch_attention``).
        """
        expand = self.patch
        idx = np.repeat(np.arange(patch_assoc.shape[-1]), expand)
        return patch_assoc[..., idx, :][..., idx] * (1.0 / expand)


class DcDetector(NeuralWindowDetector):
    """DCdetector-lite on the shared detector API."""

    name = "DCdetector"

    def __init__(self, config: BaselineConfig | None = None, dim: int = 16,
                 heads: int = 4, patch: int = 5):
        super().__init__(config)
        self.dim = dim
        self.heads = heads
        self.patch = patch

    def build_model(self, num_features: int) -> Module:
        return DcDetectorModel(self.config.window, num_features, self.dim,
                               self.heads, self.patch, rng=self.rng)

    def _discrepancy_tensor(self, model, windows: Tensor) -> Tensor:
        """Differentiable symmetric KL between the two branch distributions."""
        point_assoc, patch_assoc = model(windows)
        upsampled = model.aligned_distributions(None, patch_assoc).clip(1e-8, 1.0)
        point_safe = point_assoc.clip(1e-8, 1.0)
        kl_forward = (point_safe * (point_safe.log() - upsampled.log())).sum(axis=-1)
        kl_backward = (upsampled * (upsampled.log() - point_safe.log())).sum(axis=-1)
        return (kl_forward + kl_backward).mean(axis=1)  # (B, T)

    def model_loss(self, model: Module, windows: Tensor,
                   service_id: str) -> Tensor:
        # Pure contrastive objective: branches must agree on normal data.
        return self._discrepancy_tensor(model, windows).mean()

    def window_errors(self, model: Module, windows: np.ndarray,
                      service_id: str) -> np.ndarray:
        return self._discrepancy_tensor(model, Tensor(windows)).data
