"""Metrics registry: P² accuracy, merge associativity, stable exports."""

import json

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    get_registry,
    install_registry,
)


# ----------------------------------------------------------------------
# P² streaming quantiles
# ----------------------------------------------------------------------
class TestP2Quantile:
    def test_exact_below_five_observations(self):
        estimator = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            estimator.observe(value)
        assert estimator.value() == 3.0

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.9).value())

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tracks_exact_quantile_on_gaussian(self, q, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(10.0, 2.0, size=5000)
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        exact = np.quantile(values, q)
        # P² error on a smooth unimodal stream is a small fraction of
        # the distribution's scale.
        assert abs(estimator.value() - exact) < 0.25

    @pytest.mark.parametrize("q", [0.5, 0.9])
    def test_tracks_exact_quantile_on_lognormal(self, q):
        rng = np.random.default_rng(7)
        values = rng.lognormal(0.0, 1.0, size=5000)
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        exact = np.quantile(values, q)
        assert abs(estimator.value() - exact) < 0.15 * max(exact, 1.0)

    def test_deterministic_under_fixed_order(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(size=1000)
        first, second = P2Quantile(0.9), P2Quantile(0.9)
        for value in values:
            first.observe(value)
        for value in values:
            second.observe(value)
        assert first.value() == second.value()

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_monotonic(self):
        counter = Counter("events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_counter_merge_adds(self):
        a, b = Counter("events"), Counter("events")
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5.0

    def test_gauge_last_writer_wins(self):
        a, b = Gauge("lr"), Gauge("lr")
        a.set(0.1)
        b.set(0.05)
        a.merge(b)
        assert a.value == 0.05


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def _histogram_from(values, name="h"):
    histogram = Histogram(name)
    for value in values:
        histogram.observe(value)
    return histogram


class TestHistogram:
    def test_moments(self):
        histogram = _histogram_from([1.0, 2.0, 3.0, 4.0])
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == 2.5

    def test_quantile_uses_p2_before_merge(self):
        rng = np.random.default_rng(11)
        values = rng.normal(5.0, 1.0, size=2000)
        histogram = _histogram_from(values)
        assert abs(histogram.quantile(0.5) - np.quantile(values, 0.5)) < 0.2

    def test_merge_associativity(self):
        """(a ⊔ b) ⊔ c and a ⊔ (b ⊔ c) snapshot identically."""
        rng = np.random.default_rng(4)
        streams = [rng.exponential(0.01, size=500) for _ in range(3)]

        def build(index):
            return _histogram_from(streams[index])

        left = build(0)
        left.merge(build(1))
        left.merge(build(2))

        right_tail = build(1)
        right_tail.merge(build(2))
        right = build(0)
        right.merge(right_tail)

        left_snap, right_snap = left.snapshot(), right.snapshot()
        # Float addition reorders across groupings; everything else —
        # buckets, counts, extrema, bucket-derived quantiles — is exact.
        assert left_snap.pop("sum") == pytest.approx(right_snap.pop("sum"))
        assert left_snap == right_snap

    def test_merge_quantile_falls_back_to_buckets(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(0.01, size=2000)
        merged = _histogram_from(values[:1000])
        merged.merge(_histogram_from(values[1000:]))
        estimate = merged.quantile(0.5)
        exact = np.quantile(values, 0.5)
        # Bucket interpolation on the 1-2.5-5 grid: coarse but bounded
        # by the enclosing bucket (edges at ratio 2.5 worst case).
        assert exact / 3.0 < estimate < exact * 3.0

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_quantile_is_nan(self):
        assert np.isnan(Histogram("h").quantile(0.5))


class TestExemplars:
    def test_worst_observation_per_bucket_wins(self):
        histogram = Histogram("h")
        histogram.observe(0.004, exemplar="trace-a")
        histogram.observe(0.0045, exemplar="trace-b")   # same bucket, worse
        histogram.observe(0.0041, exemplar="trace-c")   # same bucket, better
        histogram.observe(0.4, exemplar="trace-d")      # far bucket
        assert len(histogram.exemplars) == 2
        assert histogram.worst_exemplar() == {"value": 0.4,
                                              "trace_id": "trace-d"}

    def test_unexemplared_observations_leave_no_trace(self):
        histogram = Histogram("h")
        histogram.observe(0.004)
        assert histogram.exemplars == {}
        assert histogram.worst_exemplar() is None
        assert "exemplars" not in histogram.snapshot()  # old output shape

    def test_snapshot_round_trip(self):
        histogram = Histogram("h")
        histogram.observe(0.004, exemplar="trace-a")
        histogram.observe(0.4, exemplar="trace-d")
        restored = MetricsRegistry.from_jsonl(
            json.dumps(histogram.snapshot()))
        series = restored.collect("h")[0]
        assert series.worst_exemplar() == {"value": 0.4,
                                           "trace_id": "trace-d"}
        assert series.exemplars == histogram.exemplars

    def test_merge_keeps_per_bucket_worst(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(0.004, exemplar="trace-a")
        b.observe(0.0045, exemplar="trace-b")           # same bucket, worse
        b.observe(0.4, exemplar="trace-d")
        a.merge(b)
        buckets = sorted(a.exemplars)
        assert [a.exemplars[bucket]["trace_id"] for bucket in buckets] == \
            ["trace-b", "trace-d"]
        # Merge the other way: same verdict (associative surface).
        c = Histogram("h")
        c.observe(0.004, exemplar="trace-a")
        b.merge(c)
        assert b.exemplars == a.exemplars


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", service="svc-1")
        b = registry.counter("hits", service="svc-1")
        c = registry.counter("hits", service="svc-2")
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_collect_by_name(self):
        registry = MetricsRegistry()
        registry.histogram("lat", op="a")
        registry.histogram("lat", op="b")
        registry.counter("other")
        assert len(registry.collect("lat")) == 2

    def test_jsonl_bitwise_stable_under_fixed_seed(self):
        def build():
            registry = MetricsRegistry()
            rng = np.random.default_rng(42)
            histogram = registry.histogram("trainer.epoch_seconds")
            for value in rng.exponential(0.5, size=200):
                histogram.observe(value)
            registry.counter("trainer.batches").inc(200)
            registry.gauge("trainer.lr").set(1e-3)
            return registry.to_jsonl()

        assert build() == build()

    def test_jsonl_roundtrip_preserves_merged_view(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", service="s")
        for value in (0.01, 0.02, 0.4):
            histogram.observe(value)
        registry.counter("hits").inc(3)
        restored = MetricsRegistry.from_jsonl(registry.to_jsonl())
        hist2 = restored.get("lat", service="s")
        assert hist2.count == 3
        assert hist2.total == pytest.approx(0.43)
        assert hist2.bucket_counts == histogram.bucket_counts
        assert restored.get("hits").value == 3.0

    def test_merge_snapshot_matches_direct_merge(self):
        """The result.json handoff (snapshot) merges like live registries."""
        def worker(seed):
            registry = MetricsRegistry()
            rng = np.random.default_rng(seed)
            histogram = registry.histogram("op_seconds", op="mul")
            for value in rng.exponential(0.001, size=300):
                histogram.observe(value)
            registry.counter("batches").inc(300)
            return registry

        direct = MetricsRegistry()
        direct.merge(worker(1))
        direct.merge(worker(2))

        via_snapshot = MetricsRegistry()
        via_snapshot.merge_snapshot(worker(1).snapshot())
        via_snapshot.merge_snapshot(worker(2).snapshot())

        assert direct.to_jsonl() == via_snapshot.to_jsonl()

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        registry.counter("c").inc()
        json.dumps(registry.snapshot())

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits", service="a").inc(2)
        histogram = registry.histogram("lat")
        histogram.observe(0.2)
        text = registry.render_prometheus()
        assert "# TYPE hits counter" in text
        assert 'hits{service="a"} 2' in text
        assert "lat_count 1" in text
        assert 'le="+Inf"' in text

    def test_install_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = install_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            install_registry(previous)
        assert get_registry() is previous
