"""Spectral statistics used by the paper's empirical motivation.

Table II reports the average per-window amplitude *variance* of anomalous
vs. normal windows; Table III reports the average amplitude *expectation*.
Fig. 5(a) characterises dataset diversity via pairwise KL divergence between
per-subset value distributions (kernel density estimates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import gaussian_kde

from repro.frequency.dft import rfft_amplitude

__all__ = [
    "SpectrumStats",
    "spectrum_variance",
    "spectrum_expectation",
    "compare_anomaly_normal",
    "spectral_kl_divergence",
    "pairwise_kde_kl",
]


def spectrum_variance(windows: np.ndarray) -> float:
    """Mean within-window amplitude variance.

    ``windows`` is ``(W, T)`` or ``(W, T, m)``; the DFT runs over ``T``
    (features first moved to the leading axes) and the variance is taken
    across bins within each window, then averaged.
    """
    amplitude = _window_amplitudes(windows)
    return float(amplitude.var(axis=-1).mean())


def spectrum_expectation(windows: np.ndarray) -> float:
    """Mean amplitude (Table III statistic)."""
    amplitude = _window_amplitudes(windows)
    return float(amplitude.mean())


def _window_amplitudes(windows: np.ndarray) -> np.ndarray:
    if windows.ndim == 3:  # (W, T, m) -> (W, m, T)
        windows = np.moveaxis(windows, -1, 1)
    elif windows.ndim != 2:
        raise ValueError("expected (W, T) or (W, T, m) window array")
    return rfft_amplitude(windows)


@dataclass(frozen=True)
class SpectrumStats:
    """Anomaly-vs-normal spectral summary for one dataset."""

    anomaly_variance: float
    normal_variance: float
    anomaly_expectation: float
    normal_expectation: float

    @property
    def variance_ratio(self) -> float:
        return self.anomaly_variance / max(self.normal_variance, 1e-12)

    @property
    def expectation_gap(self) -> float:
        return self.anomaly_expectation - self.normal_expectation


def compare_anomaly_normal(anomalous_windows: np.ndarray,
                           normal_windows: np.ndarray) -> SpectrumStats:
    """Compute the Table II / Table III statistics for one dataset."""
    return SpectrumStats(
        anomaly_variance=spectrum_variance(anomalous_windows),
        normal_variance=spectrum_variance(normal_windows),
        anomaly_expectation=spectrum_expectation(anomalous_windows),
        normal_expectation=spectrum_expectation(normal_windows),
    )


def spectral_kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> float:
    """KL(p || q) between two normalised spectra."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("spectra must share a shape")
    p = np.maximum(p / p.sum(), eps)
    q = np.maximum(q / q.sum(), eps)
    return float(np.sum(p * np.log(p / q)))


def pairwise_kde_kl(series_list, grid_size: int = 200, eps: float = 1e-12) -> np.ndarray:
    """Fig. 5(a): pairwise KL divergences between per-subset KDE densities.

    Each element of ``series_list`` is a 1-D (or flattened) sample of one
    subset's normal values.  Returns the upper-triangle KL values.
    """
    samples = [np.asarray(s, dtype=float).reshape(-1) for s in series_list]
    if len(samples) < 2:
        raise ValueError("need at least two subsets")
    low = min(s.min() for s in samples)
    high = max(s.max() for s in samples)
    span = max(high - low, 1e-6)
    grid = np.linspace(low - 0.1 * span, high + 0.1 * span, grid_size)
    densities = []
    for sample in samples:
        if np.std(sample) < 1e-3 * span:
            # Degenerate subset: a singular KDE would produce zero density
            # on the shared grid; widen it proportionally to the grid span.
            sample = sample + np.random.default_rng(0).normal(
                0, 0.01 * span, sample.size
            )
        density = gaussian_kde(sample)(grid)
        total = density.sum()
        if total <= 0 or not np.isfinite(total):
            density = np.full_like(density, 1.0 / density.size)
            total = 1.0
        density = np.maximum(density / total, eps)
        densities.append(density)
    values = []
    for i in range(len(densities)):
        for j in range(i + 1, len(densities)):
            p, q = densities[i], densities[j]
            values.append(float(np.sum(p * np.log(p / q))))
    return np.asarray(values)
