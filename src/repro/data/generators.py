"""Per-service data generation: normal train split + labelled test split.

Follows the standard unsupervised TSAD setup (SMD, SMAP, J-D1/2 all ship
this way): the training half is anomaly-free telemetry, the test half has
injected anomalies with ground-truth labels.  Each service carries its own
:class:`~repro.data.patterns.NormalPattern`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.data.anomalies import (
    AnomalyKind,
    AnomalySegment,
    InjectionContext,
    default_mix,
    inject_anomalies,
)
from repro.data.patterns import NormalPattern, random_pattern

__all__ = ["ServiceData", "Normalizer", "generate_service"]


@dataclass
class Normalizer:
    """Per-feature z-normalisation fitted on the training split."""

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, series: np.ndarray) -> "Normalizer":
        return cls(series.mean(axis=0), np.maximum(series.std(axis=0), 1e-6))

    def transform(self, series: np.ndarray) -> np.ndarray:
        return (series - self.mean) / self.std

    def inverse(self, series: np.ndarray) -> np.ndarray:
        return series * self.std + self.mean


@dataclass
class ServiceData:
    """One service's generated data.

    ``train``/``test`` are z-normalised with statistics fitted on the raw
    training split, matching the preprocessing every baseline paper uses.
    """

    service_id: str
    train: np.ndarray
    test: np.ndarray
    test_labels: np.ndarray
    segments: List[AnomalySegment]
    pattern: NormalPattern
    normalizer: Normalizer
    metadata: Dict = field(default_factory=dict)

    @property
    def num_features(self) -> int:
        return self.train.shape[1]

    @property
    def anomaly_ratio(self) -> float:
        return float(self.test_labels.mean())

    def __repr__(self) -> str:
        return (
            f"ServiceData({self.service_id!r}, train={self.train.shape}, "
            f"test={self.test.shape}, anomaly_ratio={self.anomaly_ratio:.3f})"
        )


def generate_service(service_id: str, pattern: NormalPattern, train_length: int,
                     test_length: int, anomaly_ratio: float,
                     anomaly_mix: Dict[AnomalyKind, float] | None = None,
                     rng: np.random.Generator | None = None,
                     context: InjectionContext | None = None) -> ServiceData:
    """Generate one service: continuous series, split, inject, normalise.

    ``context`` carries the other services' dominant periods so the
    frequency-shift injector can plant pattern-confusion anomalies.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    anomaly_mix = anomaly_mix if anomaly_mix is not None else default_mix()
    total = train_length + test_length
    raw = pattern.sample(total, rng)
    raw_train = raw[:train_length]
    raw_test = raw[train_length:]
    injected = inject_anomalies(raw_test, anomaly_ratio, anomaly_mix, rng=rng,
                                context=context)
    normalizer = Normalizer.fit(raw_train)
    return ServiceData(
        service_id=service_id,
        train=normalizer.transform(raw_train),
        test=normalizer.transform(injected.series),
        test_labels=injected.labels,
        segments=injected.segments,
        pattern=pattern,
        normalizer=normalizer,
    )
