"""Autograd anomaly mode: pinpoint the op that introduces a NaN/Inf.

The dualistic convolution raises inputs to high odd powers and takes odd
roots, so a single overflow or negative-intermediate mistake silently
poisons every downstream value.  ``detect_anomaly()`` instruments the
autograd engine through the op-hook registry in :mod:`repro.nn.autograd`:

* every op's *forward* output is checked for non-finite values the moment
  it is created, so the first raise names the op that **introduced** the
  problem (its parents were checked before it, by construction);
* every recorded backward closure is wrapped so the gradients it writes
  into its parents are checked too, again naming the producing op;
* the report carries provenance: op name, output/parent shapes and dtypes,
  and a snippet of the user stack at op creation.

The mode is a context manager and costs nothing when inactive (the engine
checks an empty hook list).  Inside the context every op pays one
``np.isfinite`` scan — use it to debug, not to train at scale.
"""

from __future__ import annotations

import traceback
from pathlib import Path
from typing import Iterable, Optional

import numpy as np

from repro.nn import autograd
from repro.nn.tensor import Tensor

__all__ = ["AnomalyError", "detect_anomaly"]

_INTERNAL_DIRS = (
    str(Path(__file__).resolve().parent),            # repro/analysis
    str(Path(autograd.__file__).resolve().parent),   # repro/nn
)


class AnomalyError(RuntimeError):
    """A non-finite value was produced by an instrumented op."""


def _is_finite(array: np.ndarray) -> bool:
    array = np.asarray(array)
    if not np.issubdtype(array.dtype, np.floating):
        return True
    return bool(np.all(np.isfinite(array)))


def _nonfinite_counts(array: np.ndarray) -> str:
    array = np.asarray(array)
    nan = int(np.isnan(array).sum())
    inf = int(np.isinf(array).sum())
    parts = []
    if nan:
        parts.append(f"{nan} NaN")
    if inf:
        parts.append(f"{inf} Inf")
    return " + ".join(parts) if parts else "0 non-finite"


def _describe_parents(parents: Iterable[Tensor]) -> str:
    parts = []
    for index, parent in enumerate(parents):
        status = "finite" if _is_finite(parent.data) else "NON-FINITE"
        parts.append(
            f"  parent[{index}]: shape={parent.shape}, dtype={parent.dtype}, "
            f"op='{parent._op}', values {status}"
        )
    return "\n".join(parts) if parts else "  (no parents)"


def _creation_stack(limit: int = 3) -> str:
    """Last ``limit`` user-code frames (engine internals filtered out)."""
    frames = traceback.extract_stack()
    user_frames = [
        frame for frame in frames
        if not any(frame.filename.startswith(prefix) for prefix in _INTERNAL_DIRS)
    ]
    snippet = user_frames[-limit:] if user_frames else frames[-limit:]
    lines = [
        f"  {frame.filename}:{frame.lineno} in {frame.name}: {frame.line or '?'}"
        for frame in snippet
    ]
    return "\n".join(lines)


class detect_anomaly:
    """Context manager that raises :class:`AnomalyError` at the faulty op.

    Example
    -------
    >>> with detect_anomaly():
    ...     loss = model.loss(model(windows, extractor, "svc-0"))
    ...     loss.backward()

    Parameters
    ----------
    check_backward:
        Also wrap backward closures so non-finite *gradients* are caught
        and attributed to the op whose backward produced them (default).
    """

    def __init__(self, check_backward: bool = True):
        self.check_backward = check_backward
        self._active = False

    # -- hook ----------------------------------------------------------
    def _hook(self, out: Tensor, parents: tuple, op: str) -> None:
        stack = _creation_stack()
        if not _is_finite(out.data):
            raise AnomalyError(
                f"forward of op '{op}' produced a non-finite output "
                f"({_nonfinite_counts(out.data)} in shape {out.shape}, "
                f"dtype {out.dtype}).\n"
                f"parents:\n{_describe_parents(parents)}\n"
                f"created at:\n{stack}"
            )
        if self.check_backward and out._backward is not None:
            out._backward = self._wrap_backward(out._backward, parents, op, stack)

    def _wrap_backward(self, inner, parents: tuple, op: str, stack: str):
        def checked_backward(grad):
            if grad is not None and not _is_finite(grad):
                raise AnomalyError(
                    f"non-finite gradient ({_nonfinite_counts(grad)}) flowed "
                    f"into the backward of op '{op}'; an earlier backward or "
                    f"the seed gradient produced it.\ncreated at:\n{stack}"
                )
            already_bad = [
                parent.grad is not None and not _is_finite(parent.grad)
                for parent in parents
            ]
            inner(grad)
            for index, (parent, was_bad) in enumerate(zip(parents, already_bad)):
                if parent.grad is None or was_bad:
                    continue
                if not _is_finite(parent.grad):
                    raise AnomalyError(
                        f"backward of op '{op}' produced a non-finite gradient "
                        f"({_nonfinite_counts(parent.grad)}) for parent[{index}] "
                        f"(shape {parent.shape}, dtype {parent.dtype}, "
                        f"op '{parent._op}').\nop created at:\n{stack}"
                    )

        return checked_backward

    # -- context protocol ----------------------------------------------
    def __enter__(self) -> "detect_anomaly":
        if self._active:
            raise RuntimeError("detect_anomaly context is not reentrant")
        autograd.register_op_hook(self._hook)
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> Optional[bool]:
        autograd.unregister_op_hook(self._hook)
        self._active = False
        return None
