"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.dataset == "smd"
        assert args.threshold == "best_f1"


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "smd" in out and "j-d2" in out

    def test_analyze_data(self, capsys):
        assert main(["analyze-data", "--dataset", "smd", "--services", "3",
                     "--length", "256"]) == 0
        out = capsys.readouterr().out
        assert "diversity" in out and "recommended window" in out

    def test_detect_small(self, capsys):
        assert main(["detect", "--dataset", "smd", "--services", "2",
                     "--length", "256", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--dataset", "smd", "--services", "2",
                     "--length", "256", "--epochs", "1",
                     "--baselines", "VAE"]) == 0
        out = capsys.readouterr().out
        assert "MACE" in out and "VAE" in out

    def test_compare_unknown_baseline(self, capsys):
        assert main(["compare", "--baselines", "Nope", "--services", "2",
                     "--length", "256"]) == 2


class TestAnalysisCommands:
    def test_lint_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violating_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand()\n")
        assert main(["lint", str(bad)]) == 1
        assert "REP101" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP101" in out and "REP104" in out

    def test_lint_select(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand()\n")
        assert main(["lint", str(bad), "--select", "REP104"]) == 0

    def test_analyze_effects_gate_passes(self, capsys):
        # golden-file gate: the committed det_baseline.json must match
        # the analyzer's current audited set exactly
        assert main(["analyze", "--effects",
                     "--baseline", "det_baseline.json"]) == 0
        out = capsys.readouterr().out
        assert "determinism contract holds" in out
        assert "MaceTrainer.fit" in out

    def test_analyze_effects_json_matches_golden_baseline(self, capsys):
        import json

        assert main(["analyze", "--effects", "--json",
                     "--baseline", "det_baseline.json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unaudited"] == []
        assert payload["new_audited"] == []
        assert payload["vanished"] == []
        golden = json.loads(
            open("det_baseline.json", encoding="utf-8").read())
        assert golden["audited"]  # committed baseline is non-empty
        # every reported finding is audited and fingerprint-covered
        assert payload["summary"]["audited"] >= len(golden["audited"])
        assert all(f["suppressed"] for f in payload["findings"])
        assert all(row["found"] for row in payload["roots"])

    def test_analyze_effects_update_baseline_roundtrip(self, tmp_path,
                                                       capsys):
        import json

        target = tmp_path / "det_baseline.json"
        assert main(["analyze", "--effects", "--update-baseline",
                     "--baseline", str(target)]) == 0
        written = json.loads(target.read_text(encoding="utf-8"))
        committed = json.loads(
            open("det_baseline.json", encoding="utf-8").read())
        assert written == committed

    def test_analyze_effects_vanished_fails(self, tmp_path, capsys):
        import json

        committed = json.loads(
            open("det_baseline.json", encoding="utf-8").read())
        committed["audited"].append("DET999|ghost|x|y|z.py")
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(committed), encoding="utf-8")
        assert main(["analyze", "--effects",
                     "--baseline", str(doctored)]) == 1
        assert "VANISHED" in capsys.readouterr().out

    def test_check_model_defaults(self, capsys):
        assert main(["check-model"]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out and "N" in out

    def test_check_model_concrete_batch(self, capsys):
        assert main(["check-model", "--batch", "16", "--features", "5"]) == 0
        assert "16" in capsys.readouterr().out

    def test_check_model_negative_batch_rejected(self, capsys):
        assert main(["check-model", "--batch", "-5"]) == 1
        assert "non-negative" in capsys.readouterr().err

    def test_check_model_bad_config(self, capsys):
        # num-bases 0 collapses the spectrum below the characterization
        # kernel — the contract must fail and name the layer, not crash.
        assert main(["check-model", "--num-bases", "0"]) == 1
        err = capsys.readouterr().err
        assert "contract violation" in err
        assert "characterization.conv" in err


class TestObsCommand:
    def _run_dir(self, tmp_path):
        from repro.obs.events import EventLog

        with EventLog(tmp_path / "events.jsonl") as log:
            log.emit("epoch", epoch=1, loss=0.5, grad_norm=1.0,
                     seconds=0.2, nonfinite=0)
        return tmp_path

    def test_obs_report_renders(self, tmp_path, capsys):
        directory = self._run_dir(tmp_path)
        assert main(["obs", "report", "--dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "epoch timeline" in out

    def test_obs_report_missing_dir(self, tmp_path, capsys):
        code = main(["obs", "report", "--dir", str(tmp_path / "absent")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["obs"])

    def test_train_fleet_parser_accepts_obs_flag(self):
        args = build_parser().parse_args(
            ["train-fleet", "--obs", "--dir", "/tmp/x"])
        assert args.obs is True
        args = build_parser().parse_args(["train-fleet"])
        assert args.obs is False


class TestServeCommand:
    """Golden-file coverage for the serving-gateway CLI.

    The serve pipeline is seeded end to end (fleet synthesis, shard
    placement, fault plan, worker kill), so its rendered output is
    bitwise stable and committed as ``golden_serve.txt``.
    """

    ARGS = ["serve", "--services", "4", "--history", "64",
            "--updates", "12", "--fault-rate", "1.0",
            "--fault-seed", "1", "--kill", "svc-0:10"]

    def test_matches_golden_output(self, capsys):
        from pathlib import Path

        assert main(self.ARGS) == 0
        golden = (Path(__file__).parent / "golden_serve.txt").read_text()
        assert capsys.readouterr().out == golden

    def test_bad_kill_spec(self, capsys):
        assert main(["serve", "--services", "2", "--history", "64",
                     "--updates", "4", "--kill", "nocolon"]) == 2
        assert "bad --kill" in capsys.readouterr().err

    def test_history_below_calibration_floor(self, capsys):
        assert main(["serve", "--services", "2", "--history", "16",
                     "--updates", "4"]) == 2
        assert "calibration floor" in capsys.readouterr().err

    def test_obs_report_renders_gateway_section(self, tmp_path, capsys):
        # the gateway leaves events.jsonl + metrics.jsonl behind; the
        # obs report must reconstruct the serving story from those alone
        assert main(["serve", "--services", "2", "--history", "64",
                     "--updates", "4", "--workers", "1",
                     "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "serving gateway" in out
        assert "drained cleanly" in out


def _slo_run_dir(path):
    """A deterministic run directory exercising the SLO/trace surfaces.

    Everything is tick-clocked and seeded — event timestamps, trace ids,
    histogram contents — so the rendered console and report are
    byte-identical across runs and committed as golden files.
    """
    from repro.obs.events import EventLog
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.propagate import TraceContext, TraceLog
    from repro.obs.slo import BurnWindow, SloEngine, SloObjective

    registry = MetricsRegistry()
    ack = registry.histogram("gateway.ack_seconds")
    tick_box = [0]
    log = EventLog(path / "events.jsonl",
                   clock=lambda: float(tick_box[0]))
    engine = SloEngine(
        [SloObjective("ack-p99", "latency", "gateway.ack_seconds",
                      target=0.99, threshold=0.05, service="svc-0")],
        registry=registry, events=log,
        windows=(BurnWindow("fast", short_ticks=5, long_ticks=20,
                            burn_threshold=10.0),))
    traces = TraceLog(path / "spans.jsonl")
    for tick in range(1, 31):
        tick_box[0] = tick
        seconds = 0.2 if 10 <= tick < 20 else 0.004   # the fault window
        context = TraceContext.mint(0, "svc-0", tick)
        ack.observe(seconds, exemplar=context.trace_id)
        traces.record("gateway.submit", context, seconds,
                      service="svc-0", sequence=tick, shard="shard-0",
                      degraded=False)
        child = context.child("worker.update", qualifier="0:1")
        traces.record("worker.update", child, seconds / 2,
                      parent_span_id=context.span_id, depth=1,
                      service="svc-0", sequence=tick, shard="shard-0",
                      incarnation=0, replay=False, duplicate=False)
        engine.step(tick)
    registry.counter("gateway.accepted", tenant="default").inc(30)
    registry.gauge("gateway.queue_depth", shard="shard-0").set(3)
    wait = registry.histogram("gateway.queue_wait_seconds", shard="shard-0")
    for value in (0.001, 0.002, 0.004):
        wait.observe(value)
    registry.histogram("serving.update_seconds",
                       service="svc-0").observe(0.004)
    registry.histogram("serving.update_seconds",
                       service="svc-1").observe(0.004)
    log.emit("health_transition", service="svc-1",
             **{"from": "HEALTHY", "to": "DEGRADED", "tick": 30})
    registry.dump(path / "metrics.jsonl")
    log.close()
    traces.close()
    return path


class TestObsGoldens:
    """Byte-identical console and report output for a synthetic SLO run."""

    def test_obs_top_once_matches_golden(self, tmp_path, capsys):
        from pathlib import Path

        directory = _slo_run_dir(tmp_path)
        assert main(["obs", "top", "--dir", str(directory), "--once"]) == 0
        golden = (Path(__file__).parent / "golden_obs_top.txt").read_text()
        assert capsys.readouterr().out == golden

    def test_obs_report_slo_sections_match_golden(self, tmp_path, capsys):
        from pathlib import Path

        directory = _slo_run_dir(tmp_path)
        assert main(["obs", "report", "--dir", str(directory)]) == 0
        out = capsys.readouterr().out
        golden = (Path(__file__).parent /
                  "golden_obs_report.txt").read_text()
        assert out == golden
        # The exemplar drill-down links the p99 to its trace tree.
        assert "slo status" in out
        assert "latency exemplars" in out
        assert "worst gateway.ack_seconds trace:" in out


class TestTrafficCommand:
    """The traffic preview is pure planning — no workers — and seeded."""

    ARGS = ["traffic", "--services", "4", "--history", "64",
            "--updates", "12", "--fault-rate", "1.0", "--fault-seed", "1"]

    def test_matches_golden_output(self, capsys):
        from pathlib import Path

        assert main(self.ARGS) == 0
        golden = (Path(__file__).parent / "golden_traffic.txt").read_text()
        assert capsys.readouterr().out == golden

    def test_fault_free_preview_has_no_faults(self, capsys):
        assert main(["traffic", "--services", "3", "--history", "64",
                     "--updates", "5"]) == 0
        out = capsys.readouterr().out
        assert "fault rate 0" in out
        # every fault column entry is the "-" placeholder
        for line in out.splitlines()[3:]:
            assert " - " in line
