"""Fig. 6(e)/(f) — kernel size × γ_t and #Fourier bases × γ_f grids.

Paper claims: (e) F1 rises then falls with the time-domain kernel size
(small kernels under-extend anomalies, huge kernels distort the series);
(f) F1 rises then falls with the number of bases k (Corollary 1: too few
bases drop normal energy, too many admit anomaly energy — at k = n the
theoretical gap is zero).
"""

import numpy as np

from common import bench_dataset, mace_factory, run_once, save_results, scale_params
from repro.data import unified_groups
from repro.eval import format_table, run_unified

PAPER_KERNELS = (3, 5, 7, 11, 13)
COARSE_KERNELS = (3, 5, 13)
PAPER_BASES = (5, 10, 15, 20)      # 21 bins at window 40; k=20 ~ full
COARSE_BASES = (3, 10, 20)
GAMMAS = (5, 11)


def run_grids():
    params = scale_params()
    dataset = bench_dataset(
        "smd", num_services=params["grid_services"],
        train_length=params["grid_length"], test_length=params["grid_length"],
    )
    groups = unified_groups(dataset, params["grid_services"])
    coarse = params["grid_points"] is not None
    kernels = COARSE_KERNELS if coarse else PAPER_KERNELS
    bases = COARSE_BASES if coarse else PAPER_BASES

    grid_kernel = {}
    for gamma in GAMMAS:
        for kernel in kernels:
            grid_kernel[(kernel, gamma)] = run_unified(
                mace_factory(kernel_time=kernel, gamma_time=gamma, epochs=4),
                groups,
            ).f1
    grid_bases = {}
    for gamma in GAMMAS:
        for k in bases:
            grid_bases[(k, gamma)] = run_unified(
                mace_factory(num_bases=k, gamma_freq=gamma, epochs=4),
                groups,
            ).f1
    return kernels, bases, grid_kernel, grid_bases


def test_fig6ef_kernel_bases(benchmark):
    kernels, bases, grid_kernel, grid_bases = run_once(benchmark, run_grids)
    print()
    rows = [
        (f"kernel={k}",) + tuple(grid_kernel[(k, g)] for g in GAMMAS)
        for k in kernels
    ]
    print(format_table(("", *[f"gamma_t={g}" for g in GAMMAS]), rows,
                       title="Fig. 6(e) — time-kernel size x gamma_t (F1)"))
    print()
    rows = [
        (f"k={k}",) + tuple(grid_bases[(k, g)] for g in GAMMAS)
        for k in bases
    ]
    print(format_table(("", *[f"gamma_f={g}" for g in GAMMAS]), rows,
                       title="Fig. 6(f) — #Fourier bases x gamma_f (F1)"))
    save_results("fig6ef", {
        "kernel": {f"{k}x{g}": f1 for (k, g), f1 in grid_kernel.items()},
        "bases": {f"{k}x{g}": f1 for (k, g), f1 in grid_bases.items()},
    })
    # Shape (f): a mid-range k beats the near-full spectrum (k = 20 of 21
    # bins) — the sparsity claim of Theorem 2 / Corollary 1.
    for gamma in GAMMAS:
        mid = max(grid_bases[(k, gamma)] for k in bases[:-1])
        full = grid_bases[(bases[-1], gamma)]
        assert mid >= full - 0.02, (
            f"gamma_f={gamma}: mid-k F1 {mid:.3f} should not trail "
            f"near-full-spectrum F1 {full:.3f}"
        )
