"""Dataset import/export round-trips."""

import numpy as np
import pytest

from repro.data import (
    load_dataset,
    load_dataset_file,
    save_dataset,
    service_from_arrays,
)


class TestServiceFromArrays:
    def test_wraps_and_normalises(self, rng):
        train = rng.normal(5.0, 2.0, size=(300, 3))
        test = rng.normal(5.0, 2.0, size=(200, 3))
        labels = np.zeros(200, dtype=int)
        labels[50:60] = 1
        service = service_from_arrays("user-svc", train, test, labels)
        assert service.service_id == "user-svc"
        np.testing.assert_allclose(service.train.mean(axis=0), 0.0, atol=1e-9)
        assert len(service.segments) == 1
        assert service.segments[0].start == 50

    def test_without_labels(self, rng):
        service = service_from_arrays("svc", rng.normal(size=(100, 2)),
                                      rng.normal(size=(50, 2)))
        assert service.test_labels.sum() == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            service_from_arrays("svc", rng.normal(size=(100, 2)),
                                rng.normal(size=(50, 3)))
        with pytest.raises(ValueError):
            service_from_arrays("svc", rng.normal(size=(100, 2)),
                                rng.normal(size=(50, 2)), np.zeros(10))

    def test_no_normalize_keeps_values(self, rng):
        train = rng.normal(5.0, 2.0, size=(100, 2))
        service = service_from_arrays("svc", train, train, normalize=False)
        np.testing.assert_allclose(service.train, train)


class TestDatasetRoundTrip:
    def test_npz_roundtrip(self, tmp_path):
        dataset = load_dataset("smd", num_services=2, train_length=128,
                               test_length=128)
        path = save_dataset(dataset, tmp_path / "smd.npz")
        restored = load_dataset_file(path)
        assert len(restored) == 2
        assert restored.profile.name == "smd"
        for original, clone in zip(dataset, restored):
            assert original.service_id == clone.service_id
            np.testing.assert_allclose(original.train, clone.train)
            np.testing.assert_array_equal(original.test_labels,
                                          clone.test_labels)
            assert len(original.segments) == len(clone.segments)
            np.testing.assert_allclose(original.normalizer.mean,
                                       clone.normalizer.mean)

    def test_restored_dataset_feeds_detectors(self, tmp_path):
        from repro.baselines import BaselineConfig, VaeDetector

        dataset = load_dataset("smd", num_services=1, train_length=256,
                               test_length=256)
        path = save_dataset(dataset, tmp_path / "d.npz")
        restored = load_dataset_file(path)
        detector = VaeDetector(BaselineConfig(epochs=1, train_stride=8))
        detector.fit([restored[0].service_id], [restored[0].train])
        scores = detector.score(restored[0].service_id, restored[0].test)
        assert scores.shape == (256,)
