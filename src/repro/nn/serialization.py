"""Saving and loading module state dicts via ``numpy.savez``."""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.nn.modules.base import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: Dict[str, np.ndarray], path: str | Path) -> None:
    """Write a state dict to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str | Path) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str | Path) -> None:
    """Persist a module's parameters and buffers."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str | Path, strict: bool = True) -> Module:
    """Restore a module in place and return it."""
    module.load_state_dict(load_state(path), strict=strict)
    return module
