"""Structured event log: schema, ordering, file durability, torn lines."""

import json

from repro.obs.events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    EventLog,
    emit,
    get_event_log,
    install_event_log,
    read_events,
)


class TestEventLog:
    def test_records_carry_schema_seq_ts_kind(self):
        log = EventLog(clock=lambda: 123.5)
        record = log.emit("epoch", epoch=1, loss=0.25)
        assert record == {"schema": SCHEMA_VERSION, "seq": 0, "ts": 123.5,
                          "kind": "epoch", "epoch": 1, "loss": 0.25}

    def test_seq_is_monotonic(self):
        log = EventLog()
        seqs = [log.emit("epoch", epoch=i)["seq"] for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_tail_filter_by_kind(self):
        log = EventLog()
        log.emit("epoch", epoch=0)
        log.emit("retry", group="g0")
        log.emit("epoch", epoch=1)
        assert len(log.events("epoch")) == 2
        assert len(log.events()) == 3

    def test_tail_is_bounded(self):
        log = EventLog(keep=3)
        for index in range(10):
            log.emit("epoch", epoch=index)
        assert [e["epoch"] for e in log.events()] == [7, 8, 9]

    def test_payload_coercion(self, tmp_path):
        import numpy as np

        log = EventLog()
        record = log.emit("checkpoint_save",
                          path=tmp_path / "ckpt.npz",
                          loss=np.float64(1.5),
                          batches=(1, 2),
                          nested={"a": np.int64(3)})
        json.dumps(record)  # everything must be JSON-native already
        assert record["path"].endswith("ckpt.npz")
        assert record["loss"] == 1.5
        assert record["batches"] == [1, 2]
        assert record["nested"] == {"a": 3.0}

    def test_catalogue_covers_shipped_instrumentation(self):
        assert {"health_transition", "breaker_trip", "checkpoint_save",
                "checkpoint_rewind", "nonfinite_batch", "epoch",
                "attempt_start", "attempt_end", "retry", "group_done",
                "group_failed"} <= EVENT_KINDS


class TestFileBackedLog:
    def test_appends_jsonl_and_reads_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("epoch", epoch=0, loss=1.0)
            log.emit("retry", group="g0", backoff_seconds=0.5)
        records = list(read_events(path))
        assert [r["kind"] for r in records] == ["epoch", "retry"]
        assert all(r["schema"] == SCHEMA_VERSION for r in records)

    def test_read_filters_by_kind(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("epoch", epoch=0)
            log.emit("retry", group="g0")
        assert [r["kind"] for r in read_events(path, kind="retry")] == ["retry"]

    def test_reopening_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("epoch", epoch=0)
        with EventLog(path) as log:
            log.emit("epoch", epoch=1)
        assert len(list(read_events(path))) == 2

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("epoch", epoch=0)
            log.emit("epoch", epoch=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "seq": 2, "kind": "ep')  # the crash
        records = list(read_events(path))
        assert [r["epoch"] for r in records] == [0, 1]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('\n{"schema": 1, "seq": 0, "kind": "epoch"}\n\n')
        assert len(list(read_events(path))) == 1


class TestModuleLevelEmit:
    def test_emit_goes_to_installed_log(self):
        mine = EventLog()
        previous = install_event_log(mine)
        try:
            emit("nonfinite_batch", epoch=2, batch=7)
            assert get_event_log() is mine
            assert mine.events("nonfinite_batch")[0]["batch"] == 7
        finally:
            install_event_log(previous)
        assert get_event_log() is previous
