"""Optimizers and schedulers: convergence on analytic problems."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter, Tensor
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.schedulers import CosineAnnealingLR, ExponentialLR, StepLR


def _quadratic_steps(optimizer_factory, steps=200):
    """Minimise ``(x - 3)^2``; return the final parameter value."""
    param = Parameter(np.array([0.0]))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param - 3.0) * (param - 3.0)
        loss.sum().backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        final = _quadratic_steps(lambda p: SGD(p, lr=0.1))
        assert abs(final - 3.0) < 1e-4

    def test_momentum_converges(self):
        final = _quadratic_steps(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert abs(final - 3.0) < 1e-3

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(1)
        optimizer.step()
        assert abs(float(param.data[0])) < 10.0

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0]))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        final = _quadratic_steps(lambda p: Adam(p, lr=0.1))
        assert abs(final - 3.0) < 1e-3

    def test_adamw_decoupled_decay(self):
        final = _quadratic_steps(lambda p: AdamW(p, lr=0.1, weight_decay=0.01))
        assert abs(final - 3.0) < 0.2

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        params = [Parameter(np.zeros(3)) for _ in range(2)]
        for p in params:
            p.grad = np.full(3, 10.0)
        pre = clip_grad_norm(params, 1.0)
        total = np.sqrt(sum((p.grad**2).sum() for p in params))
        assert pre > 1.0
        np.testing.assert_allclose(total, 1.0, rtol=1e-9)

    def test_no_clip_when_under_limit(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        clip_grad_norm([param], 10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        rates = [scheduler.step() for _ in range(4)]
        np.testing.assert_allclose(rates, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        optimizer = self._optimizer()
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        assert scheduler.step() == 0.5
        assert scheduler.step() == 0.25

    def test_cosine_reaches_eta_min(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.05)
        for _ in range(10):
            last = scheduler.step()
        np.testing.assert_allclose(last, 0.05, atol=1e-9)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), t_max=0)


class TestTrainingIntegration:
    def test_small_network_fits_linear_map(self, rng):
        model = nn.Sequential(nn.Linear(3, 16), nn.Tanh(), nn.Linear(16, 1))
        optimizer = Adam(model.parameters(), lr=0.01)
        w_true = np.array([1.0, -2.0, 0.5])
        x = rng.normal(size=(128, 3))
        y = (x @ w_true)[:, None]
        losses = []
        from repro.nn import functional as F

        for _ in range(150):
            optimizer.zero_grad()
            loss = F.mse_loss(model(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        assert losses[-1] < 0.05 * losses[0]
