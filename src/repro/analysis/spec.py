"""Shape/dtype contract primitives for static model checking.

This is a *leaf* module: it imports only NumPy so that every layer in
``repro.nn`` and ``repro.core`` can declare its input/output contract
(``Module.contract``) without creating an import cycle with the rest of
``repro.analysis``.

A :class:`Dim` is either a concrete integer or a symbolic monomial
``coeff * sym1 * sym2 * ...`` (e.g. the batch axis ``N`` or the flattened
``3*N`` after a reshape).  That is exactly the algebra the MACE graph needs:
batch dims flow through reshapes as whole factors while window lengths and
channel counts stay concrete, so convolution arithmetic
``(L + 2p - k) // s + 1`` remains decidable.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

__all__ = ["Dim", "TensorSpec", "ContractError", "child_contract", "merge_dtype"]

DimLike = Union["Dim", int, str]


class ContractError(ValueError):
    """A module's declared contract was violated by the incoming spec.

    Carries the dotted submodule path (built up by :func:`child_contract`
    as the error propagates out of a module tree) so the offending layer is
    named exactly, e.g. ``peak_branch.encoder``.
    """

    def __init__(self, message: str, path: Iterable[str] = ()):
        self.message = message
        self.path = list(path)
        super().__init__(message)

    def push(self, name: str) -> "ContractError":
        """Prepend a submodule name to the error's path and return self."""
        self.path.insert(0, name)
        return self

    def __str__(self) -> str:
        location = ".".join(self.path)
        return f"[{location}] {self.message}" if location else self.message


class Dim:
    """A tensor dimension: a concrete int or a symbolic monomial.

    Supports exactly the arithmetic static shape inference needs:
    multiplication by ints and other dims (reshape products), exact floor
    division (un-flattening, strided convolutions), and addition/subtraction
    of ints on concrete dims (padding / kernel arithmetic).  Operations that
    would require a full symbolic algebra (e.g. ``N + 1``) raise
    :class:`ContractError` instead of guessing.
    """

    __slots__ = ("coeff", "syms")

    def __init__(self, value: DimLike = 1, syms: Tuple[str, ...] = ()):
        if isinstance(value, Dim):
            self.coeff, self.syms = value.coeff, value.syms
            return
        if isinstance(value, str):
            if not value:
                raise ContractError("symbolic dim name must be non-empty")
            self.coeff, self.syms = 1, (value,) + tuple(syms)
            return
        if isinstance(value, (bool, float)) or not isinstance(value, (int, np.integer)):
            raise ContractError(f"dim must be an int or symbol name, got {value!r}")
        if value < 0:
            raise ContractError(f"dim must be non-negative, got {value}")
        self.coeff, self.syms = int(value), tuple(sorted(syms))

    # -- predicates ----------------------------------------------------
    @property
    def is_concrete(self) -> bool:
        return not self.syms

    @property
    def value(self) -> int:
        if self.syms:
            raise ContractError(f"dim {self} is symbolic, not concrete")
        return self.coeff

    # -- algebra -------------------------------------------------------
    def __mul__(self, other: DimLike) -> "Dim":
        other = other if isinstance(other, Dim) else Dim(other)
        out = Dim(self.coeff * other.coeff)
        out.syms = tuple(sorted(self.syms + other.syms))
        return out

    __rmul__ = __mul__

    def __floordiv__(self, other: DimLike) -> "Dim":
        other = other if isinstance(other, Dim) else Dim(other)
        if other.syms:
            # N*k // N -> k : cancel common symbolic factors exactly.
            remaining = list(self.syms)
            for sym in other.syms:
                if sym not in remaining:
                    raise ContractError(f"cannot divide {self} by {other}")
                remaining.remove(sym)
            if other.coeff == 0 or self.coeff % other.coeff:
                raise ContractError(f"cannot divide {self} by {other} exactly")
            out = Dim(self.coeff // other.coeff)
            out.syms = tuple(sorted(remaining))
            return out
        if other.coeff == 0:
            raise ContractError("division of a dim by zero")
        if not self.syms:
            return Dim(self.coeff // other.coeff)
        if self.coeff % other.coeff:
            raise ContractError(
                f"cannot divide symbolic dim {self} by {other.coeff} exactly"
            )
        out = Dim(self.coeff // other.coeff)
        out.syms = self.syms
        return out

    def _offset(self, amount: int, op: str) -> "Dim":
        if not isinstance(amount, (int, np.integer)):
            raise ContractError(f"cannot {op} {amount!r} to dim {self}")
        if self.syms:
            if amount == 0:
                return self
            raise ContractError(
                f"cannot {op} a constant to symbolic dim {self}; "
                "supply a concrete size for this axis"
            )
        return Dim(self.coeff + int(amount))

    def __add__(self, other) -> "Dim":
        return self._offset(other, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Dim":
        return self._offset(-other, "subtract")

    # -- comparison / display ------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, (int, np.integer)):
            return self.is_concrete and self.coeff == int(other)
        if isinstance(other, str):
            return self.coeff == 1 and self.syms == (other,)
        if isinstance(other, Dim):
            return self.coeff == other.coeff and self.syms == other.syms
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.coeff, self.syms))

    def __repr__(self) -> str:
        if not self.syms:
            return str(self.coeff)
        symbols = "*".join(self.syms)
        return symbols if self.coeff == 1 else f"{self.coeff}*{symbols}"


class TensorSpec:
    """A tensor's static type: shape (tuple of :class:`Dim`) plus dtype."""

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: Iterable[DimLike], dtype=np.float64):
        self.shape: Tuple[Dim, ...] = tuple(
            d if isinstance(d, Dim) else Dim(d) for d in shape
        )
        self.dtype = np.dtype(dtype)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def numel(self) -> Dim:
        total = Dim(1)
        for dim in self.shape:
            total = total * dim
        return total

    def with_shape(self, shape: Iterable[DimLike], dtype=None) -> "TensorSpec":
        return TensorSpec(shape, self.dtype if dtype is None else dtype)

    # -- assertions used by module contracts ---------------------------
    def require_ndim(self, ndim: int, who: str) -> "TensorSpec":
        if self.ndim != ndim:
            raise ContractError(
                f"{who} expects a {ndim}-D input, got {self.ndim}-D {self}"
            )
        return self

    def require_axis(self, axis: int, expected: DimLike, who: str,
                     axis_name: str = "axis") -> "TensorSpec":
        expected = expected if isinstance(expected, Dim) else Dim(expected)
        if self.shape[axis] != expected:
            raise ContractError(
                f"{who} expects {axis_name} (axis {axis}) of size {expected}, "
                f"got {self.shape[axis]} in {self}"
            )
        return self

    def __eq__(self, other) -> bool:
        if not isinstance(other, TensorSpec):
            return NotImplemented
        return self.shape == other.shape and self.dtype == other.dtype

    def __hash__(self) -> int:
        return hash((self.shape, self.dtype))

    def __repr__(self) -> str:
        dims = ", ".join(repr(d) for d in self.shape)
        return f"TensorSpec(({dims}), {self.dtype})"


def merge_dtype(spec: TensorSpec, *operands, who: str) -> np.dtype:
    """Result dtype of combining ``spec`` with parameter/operand dtypes.

    Raises :class:`ContractError` when NumPy promotion would *silently
    change the activation dtype* (the classic float32-input-meets-float64-
    weight upcast that doubles memory and hides precision bugs).
    Promotion of a parameter up to the activation dtype is fine.
    """
    dtypes = [np.dtype(getattr(op, "dtype", op)) for op in operands]
    result = np.result_type(spec.dtype, *dtypes) if dtypes else spec.dtype
    if result != spec.dtype:
        raise ContractError(
            f"{who} silently promotes activations from {spec.dtype} to "
            f"{result} (operand dtypes: {[str(d) for d in dtypes]})"
        )
    return result


def child_contract(name: str, module, spec, *args, **kwargs):
    """Run a submodule's contract, tagging errors with the child's name."""
    contract = getattr(module, "contract", None)
    if contract is None:
        raise ContractError(
            f"{type(module).__name__} does not declare a shape contract",
            path=[name],
        )
    try:
        return contract(spec, *args, **kwargs)
    except ContractError as error:
        raise error.push(name)
