"""Affine layers."""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.spec import ContractError, TensorSpec, merge_dtype
from repro.nn import init
from repro.nn.modules.base import Module
from repro.nn.tensor import Parameter, Tensor

__all__ = ["Linear", "Bilinear"]


class Linear(Module):
    """Fully-connected layer ``y = x @ W.T + b`` with ``W: (out, in)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), -bound, bound, rng=rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def contract(self, spec: TensorSpec) -> TensorSpec:
        if spec.ndim < 1:
            raise ContractError("Linear expects at least a 1-D input")
        spec.require_axis(-1, self.in_features, "Linear", "in_features")
        operands = (self.weight,) if self.bias is None else (self.weight, self.bias)
        dtype = merge_dtype(spec, *operands, who="Linear")
        return spec.with_shape(spec.shape[:-1] + (self.out_features,), dtype)

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Bilinear(Module):
    """Bilinear form ``y_k = x1 @ W_k @ x2 + b_k`` (used by graph baselines)."""

    def __init__(self, in1: int, in2: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        scale = 1.0 / math.sqrt(in1)
        self.weight = Parameter(
            init.uniform((out_features, in1, in2), -scale, scale, rng=rng)
        )
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x1: Tensor, x2: Tensor) -> Tensor:
        # x1: (N, in1), x2: (N, in2) -> (N, out)
        left = x1 @ self.weight.transpose(1, 0, 2).reshape(
            self.weight.shape[1], -1
        )  # (N, out*in2)
        left = left.reshape(x1.shape[0], self.weight.shape[0], self.weight.shape[2])
        return (left * x2.reshape(x2.shape[0], 1, x2.shape[1])).sum(axis=-1) + self.bias

    def contract(self, spec: TensorSpec, other: TensorSpec) -> TensorSpec:
        spec.require_ndim(2, "Bilinear (x1)")
        other.require_ndim(2, "Bilinear (x2)")
        spec.require_axis(-1, self.weight.shape[1], "Bilinear", "in1")
        other.require_axis(-1, self.weight.shape[2], "Bilinear", "in2")
        if spec.shape[0] != other.shape[0]:
            raise ContractError(
                f"Bilinear batch dims differ: {spec.shape[0]} vs {other.shape[0]}"
            )
        dtype = merge_dtype(spec, self.weight, self.bias, other, who="Bilinear")
        return spec.with_shape((spec.shape[0], self.weight.shape[0]), dtype)
