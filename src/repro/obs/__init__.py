"""Unified observability layer: metrics, tracing spans, structured events.

The paper's headline claim is *efficiency*; this package is how the
reproduction measures it from the inside (DESIGN.md §11):

``repro.obs.metrics``
    Dependency-free registry of counters, gauges and streaming histograms
    (P² quantiles), with Prometheus-style exposition, bitwise-stable
    JSONL export, and associative cross-process merge.
``repro.obs.tracing``
    Nested context-manager spans (wall time + optional ``tracemalloc``
    deltas), deterministic root-span sampling, and a near-zero-cost
    disabled path so call sites can live in hot loops permanently; plus
    :func:`profile_ops`, the autograd op-hook latency profiler.
``repro.obs.events``
    Append-only schema-versioned JSONL event log: health transitions,
    breaker trips, checkpoint saves/rewinds, fleet retries,
    non-finite-batch skips.
``repro.obs.report``
    ``repro obs report`` — per-phase time/memory breakdown, top-k ops,
    epoch timeline and fleet attempt tables from a run directory's JSONL
    artifacts alone.
``repro.obs.propagate``
    Cross-process trace propagation: the deterministic
    :class:`TraceContext` minted at gateway admission, the wire format
    that rides WAL frames and worker IPC, and the append-only
    ``spans.jsonl`` trace sink with offline tree assembly.
``repro.obs.slo``
    Declarative SLOs over the streaming metrics: error budgets,
    multi-window burn-rate alerts (``slo_burn`` events), and the
    budget/burn gauges behind ``repro obs top``.
``repro.obs.console``
    ``repro obs top`` — the live ops console (service health, shard
    queues, budgets, active burns) rendered from JSONL alone.

Everything is off-or-cheap by default: metrics always record (a few
float ops per event), tracing must be enabled explicitly, and the event
log is an in-memory ring until a file-backed log is installed.
"""

from repro.obs.events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    EventLog,
    emit,
    get_event_log,
    install_event_log,
    read_events,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    get_registry,
    install_registry,
)
from repro.obs.tracing import (
    SpanRecord,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    profile_ops,
    span,
    tracing_enabled,
)
from repro.obs.propagate import (
    TraceContext,
    TraceLog,
    build_trace_tree,
    read_trace_spans,
    render_trace_tree,
    spans_by_trace,
)
from repro.obs.report import RunTelemetry, load_run, render_report
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SloEngine,
    SloObjective,
)
from repro.obs.console import render_top, run_top

__all__ = [
    "Counter", "Gauge", "Histogram", "P2Quantile", "MetricsRegistry",
    "DEFAULT_BUCKETS", "DEFAULT_QUANTILES",
    "get_registry", "install_registry",
    "SpanRecord", "Tracer", "span", "enable_tracing", "disable_tracing",
    "tracing_enabled", "current_tracer", "profile_ops",
    "EventLog", "EVENT_KINDS", "SCHEMA_VERSION", "emit", "get_event_log",
    "install_event_log", "read_events",
    "TraceContext", "TraceLog", "build_trace_tree", "read_trace_spans",
    "render_trace_tree", "spans_by_trace",
    "SloObjective", "BurnWindow", "SloEngine", "DEFAULT_WINDOWS",
    "RunTelemetry", "load_run", "render_report",
    "render_top", "run_top",
]
