"""repro.obs.slo: burn-rate math, edge-triggered alerts, determinism."""

import json
import math

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    SLO_SCHEMA,
    BurnWindow,
    SloEngine,
    SloObjective,
)

# One tight pair on a small tick clock so tests drive whole windows.
WINDOWS = (BurnWindow("fast", short_ticks=5, long_ticks=20,
                      burn_threshold=10.0),)


def _latency_objective(**overrides):
    defaults = dict(name="ack-p99", kind="latency",
                    metric="gateway.ack_seconds", target=0.99,
                    threshold=0.05, service="svc-0")
    return SloObjective(**{**defaults, **overrides})


def _engine(objective, registry, log=None, windows=WINDOWS):
    return SloEngine([objective], registry=registry, events=log,
                     windows=windows)


class TestDeclarations:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloObjective("x", "speed", "m", 0.99)

    def test_target_must_be_fraction(self):
        with pytest.raises(ValueError):
            _latency_objective(target=1.0)

    def test_availability_needs_bad_metric(self):
        with pytest.raises(ValueError):
            SloObjective("x", "availability", "m", 0.99)

    def test_window_ordering_enforced(self):
        with pytest.raises(ValueError):
            BurnWindow("w", short_ticks=10, long_ticks=5, burn_threshold=1.0)

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SloEngine([_latency_objective(), _latency_objective()],
                      registry=MetricsRegistry())

    def test_default_windows_are_the_sre_pairs(self):
        assert [w.label for w in DEFAULT_WINDOWS] == ["fast", "slow"]
        assert DEFAULT_WINDOWS[0].burn_threshold == 14.4

    def test_ticks_must_increase(self):
        engine = _engine(_latency_objective(), MetricsRegistry())
        engine.step(1)
        with pytest.raises(ValueError):
            engine.step(1)


class TestBurnMath:
    def test_healthy_traffic_never_fires(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("gateway.ack_seconds")
        engine = _engine(_latency_objective(), registry)
        for tick in range(1, 40):
            histogram.observe(0.004)
            assert engine.step(tick) == []
        assert engine.active_alerts() == []
        budget = registry.gauge("slo.budget_remaining", objective="ack-p99")
        assert budget.value == 1.0

    def test_sustained_burn_fires_once_then_recovers(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("gateway.ack_seconds")
        log = EventLog(clock=lambda: 0.0)
        engine = _engine(_latency_objective(), registry, log)
        fired = []
        for tick in range(1, 30):
            histogram.observe(0.2)          # every ack bad: burn = 100x
            fired.extend(engine.step(tick))
        assert len(fired) == 1              # edge-triggered, not level
        alert = fired[0]
        assert alert["slo_schema"] == SLO_SCHEMA
        assert alert["objective"] == "ack-p99"
        assert alert["window"] == "fast"
        assert alert["service"] == "svc-0"
        assert alert["burn_short"] == pytest.approx(100.0)
        assert alert["budget_remaining"] < 0  # overspent, visibly
        assert engine.active_alerts() == [("ack-p99", "fast")]
        # Clean traffic clears the windows -> one slo_recover edge.
        for tick in range(30, 80):
            histogram.observe(0.004)
            engine.step(tick)
        assert engine.active_alerts() == []
        kinds = [event["kind"] for event in log.events()]
        assert kinds.count("slo_burn") == 1
        assert kinds.count("slo_recover") == 1

    def test_short_spike_alone_does_not_page(self):
        """The long window is the flap filter: a burst that exceeds the
        short window but not the long one stays silent."""
        registry = MetricsRegistry()
        histogram = registry.histogram("gateway.ack_seconds")
        windows = (BurnWindow("fast", short_ticks=2, long_ticks=20,
                              burn_threshold=10.0),)
        engine = _engine(_latency_objective(target=0.9), registry,
                         windows=windows)
        for tick in range(1, 19):
            histogram.observe(0.004)
            assert engine.step(tick) == []
        histogram.observe(0.2)              # one bad ack in 19
        assert engine.step(19) == []        # short burn 5x? long ~0.5x
        assert engine.active_alerts() == []

    def test_availability_objective_counts_bad_metric(self):
        registry = MetricsRegistry()
        total = registry.counter("gateway.accepted")
        bad = registry.counter("gateway.rejected")
        objective = SloObjective("avail", "availability",
                                 "gateway.accepted", 0.9,
                                 bad_metric="gateway.rejected")
        engine = _engine(objective, registry)
        alerts = []
        for tick in range(1, 25):
            total.inc(); bad.inc()          # 100% bad -> burn 10x
            alerts.extend(engine.step(tick))
        assert [a["window"] for a in alerts] == ["fast"]

    def test_freshness_objective_samples_gauge_per_step(self):
        registry = MetricsRegistry()
        age = registry.gauge("serving.staleness", service="svc-1")
        objective = SloObjective("fresh", "freshness", "serving.staleness",
                                 0.95, threshold=10.0)  # 100% stale = 20x
        engine = _engine(objective, registry)
        age.set(3.0)
        for tick in range(1, 22):
            assert engine.step(tick) == []
        age.set(math.nan)                   # NaN is stale, not good
        alerts = []
        for tick in range(22, 60):
            alerts.extend(engine.step(tick))
        assert len(alerts) == 1

    def test_label_subset_matching(self):
        registry = MetricsRegistry()
        objective = _latency_objective(name="a-only", metric="lat",
                                       labels=(("service", "a"),))
        engine = _engine(objective, registry)
        engine.step(1)                      # baseline sample
        registry.histogram("lat", service="a").observe(0.2)
        registry.histogram("lat", service="b").observe(0.004)
        engine.step(2)                      # only service=a counts
        burn = registry.gauge("slo.burn_rate", objective="a-only",
                              window="fast")
        assert burn.value == pytest.approx(100.0)

    def test_listener_notified_on_rising_edge(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("gateway.ack_seconds")
        engine = _engine(_latency_objective(), registry)
        seen = []
        engine.subscribe(lambda objective, alert:
                         seen.append((objective.name, alert["window"])))
        for tick in range(1, 25):
            histogram.observe(0.2)
            engine.step(tick)
        assert seen == [("ack-p99", "fast")]


class TestDeterminism:
    """Acceptance criterion (c): burns fire iff the faulted arm actually
    burns budget, and the emitted events are byte-identical across runs."""

    def _run_arm(self, tmp_path, label, bad_ticks):
        registry = MetricsRegistry()
        histogram = registry.histogram("gateway.ack_seconds")
        tick_box = [0]
        log = EventLog(tmp_path / f"{label}.jsonl",
                       clock=lambda: float(tick_box[0]))
        engine = _engine(_latency_objective(), registry, log)
        for tick in range(1, 61):
            tick_box[0] = tick
            histogram.observe(0.2 if tick in bad_ticks else 0.004)
            engine.step(tick)
        log.close()
        return (tmp_path / f"{label}.jsonl").read_bytes()

    def test_fault_free_arm_emits_nothing(self, tmp_path):
        assert self._run_arm(tmp_path, "clean", frozenset()) == b""

    def test_faulted_arm_burns_byte_identically(self, tmp_path):
        bad = frozenset(range(10, 40))      # the injected fault window
        first = self._run_arm(tmp_path, "fault-a", bad)
        second = self._run_arm(tmp_path, "fault-b", bad)
        assert first == second != b""
        events = [json.loads(line) for line in first.splitlines()]
        assert [e["kind"] for e in events].count("slo_burn") >= 1
        burn = next(e for e in events if e["kind"] == "slo_burn")
        assert burn["ts"] == burn["tick"]   # tick clock, not wall clock
