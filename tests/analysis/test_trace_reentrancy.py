"""Re-entrant and nested tracing must leave ``Module.__call__`` pristine.

The tracer instruments ``Module.__call__`` to resolve dotted module
paths.  Naive per-trace save/restore stacks wrappers under re-entrancy
(a traced computation that itself calls ``trace``) and can resurrect a
stale wrapper on out-of-order exit; the shared-wrapper design keeps one
module-level patch and restores the pristine method exactly when the
last trace exits.
"""

import importlib

import numpy as np
import pytest

trace_module = importlib.import_module("repro.analysis.trace")
from repro.analysis.trace import trace
from repro.nn.modules.base import Module
from repro.nn.tensor import Parameter, Tensor


class Scale(Module):
    def __init__(self, factor: float = 2.0):
        super().__init__()
        self.factor = Parameter(np.array(factor))

    def forward(self, x):
        return x * self.factor


class Outer(Module):
    def __init__(self):
        super().__init__()
        self.inner = Scale()

    def forward(self, x):
        return self.inner(x) + 1.0


@pytest.fixture(autouse=True)
def pristine_call():
    original = Module.__call__
    yield original
    assert Module.__call__ is original, "a trace leaked its patch"
    assert not trace_module._ACTIVE_TRACERS
    assert trace_module._ORIGINAL_CALL is None


def test_single_trace_restores_call(pristine_call):
    model = Scale()
    x = Tensor(np.ones(3))
    graph = trace(lambda: model(x).sum(), inputs=(x,), module=model)
    assert any(n.op == "mul" for n in graph.nodes)
    assert Module.__call__ is pristine_call


def test_nested_trace_restores_call(pristine_call):
    outer_model = Outer()
    inner_model = Scale(3.0)
    x = Tensor(np.ones(3))
    captured = {}

    def outer_fn():
        # A traced computation that itself traces: the inner trace enters
        # and exits while the outer trace is live.
        y = Tensor(np.ones(3))
        captured["inner"] = trace(lambda: inner_model(y).sum(),
                                  inputs=(y,), module=inner_model)
        assert Module.__call__ is not pristine_call  # still patched
        return outer_model(x).sum()

    outer = trace(outer_fn, inputs=(x,), module=outer_model)
    assert Module.__call__ is pristine_call
    inner = captured["inner"]
    assert any(n.op == "mul" for n in inner.nodes)
    # The outer graph records its own module paths, undisturbed by the
    # inner trace's enter/exit.
    mul_paths = {n.module_path for n in outer.nodes
                 if n.op == "mul" and n.module_path}
    assert "Outer.inner" in mul_paths


def test_inner_ops_do_not_leak_outer_paths(pristine_call):
    inner_model = Scale()

    def outer_fn():
        y = Tensor(np.ones(3))
        inner = trace(lambda: inner_model(y).sum(),
                      inputs=(y,), module=inner_model)
        paths = {n.module_path for n in inner.nodes if n.op == "mul"}
        assert paths == {"Scale"}
        return Tensor(np.ones(2)).sum()

    trace(outer_fn)


def test_exception_during_trace_restores_call(pristine_call):
    model = Scale()

    def boom():
        model(Tensor(np.ones(3)))
        raise RuntimeError("mid-trace failure")

    with pytest.raises(RuntimeError, match="mid-trace failure"):
        trace(boom, module=model)
    assert Module.__call__ is pristine_call


def test_exception_in_nested_trace_keeps_outer_patch_working(pristine_call):
    model = Scale()

    def outer_fn():
        with pytest.raises(RuntimeError):
            trace(lambda: (_ for _ in ()).throw(RuntimeError()), module=model)
        # The outer trace must still be live and still instrumented.
        assert Module.__call__ is not pristine_call
        return model(Tensor(np.ones(3))).sum()

    graph = trace(outer_fn, module=model)
    paths = {n.module_path for n in graph.nodes if n.op == "mul"}
    assert "Scale" in paths


def test_third_party_patch_not_clobbered(pristine_call):
    # If someone patches Module.__call__ *on top of* the tracer's wrapper,
    # exiting the last trace must leave their patch alone.
    model = Scale()

    def outer_fn():
        current = Module.__call__

        def third_party(self, *args, **kwargs):
            return current(self, *args, **kwargs)

        Module.__call__ = third_party
        return model(Tensor(np.ones(3))).sum(), third_party

    result_holder = {}

    def fn():
        out, patch = outer_fn()
        result_holder["patch"] = patch
        return out

    trace(fn, module=model)
    assert Module.__call__ is result_holder["patch"]
    # Clean up for the autouse fixture's pristine assertion.
    Module.__call__ = pristine_call
    trace_module._ORIGINAL_CALL = None
