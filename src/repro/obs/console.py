"""``repro obs top`` — a live ops console rendered from JSONL alone.

The gateway, the SLO engine, and the serving runtime leave their whole
story in a run directory: ``events.jsonl`` (health transitions, overload
ladder, burns), ``metrics.jsonl`` (queue gauges, latency histograms,
budget gauges), ``spans.jsonl`` (traces).  This module re-reads those
artifacts — through the same torn-line-tolerant loaders the report uses,
so a console pointed at a *live* run directory mid-write never crashes —
and renders the one-screen view an operator actually wants:

* per-service health (latest transition wins),
* shard queue occupancy and queue-wait quantiles,
* per-objective error budget remaining and the burn windows firing,
* the most recent ``slo_burn`` alerts and the ack latency summary.

``render_top`` is a pure function of the directory contents (the clock
on screen is the *event* clock, i.e. the tick clock when the run
injected one), so ``repro obs top --once`` output is byte-identical for
identical artifacts — the property the golden CLI test pins.  Live mode
just re-renders on an interval with an ANSI home-and-clear prefix.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import Gauge, Histogram
from repro.obs.report import RunTelemetry, load_run

__all__ = ["render_top", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def render_top(directory: str | Path) -> str:
    """One snapshot of the ops console for a run directory."""
    telemetry = load_run(directory)
    sections = [
        _render_header(telemetry),
        _render_services(telemetry),
        _render_queues(telemetry),
        _render_budgets(telemetry),
        _render_alerts(telemetry),
        _render_acks(telemetry),
    ]
    body = "\n".join(section for section in sections if section)
    if body == sections[0]:
        body += "\n  (no service, queue, or slo telemetry yet)"
    return body


def run_top(directory: str | Path, *, once: bool = False,
            interval: float = 2.0, iterations: Optional[int] = None,
            printer: Callable[[str], None] = print) -> int:
    """Render the console; ``once`` prints a single snapshot (golden
    tests, scripts), otherwise refresh every ``interval`` seconds until
    interrupted (or ``iterations`` renders, for tests)."""
    if once:
        printer(render_top(directory))
        return 0
    rendered = 0
    try:
        while iterations is None or rendered < iterations:
            printer(_CLEAR + render_top(directory))
            rendered += 1
            if iterations is not None and rendered >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _render_header(telemetry: RunTelemetry) -> str:
    events = telemetry.fleet_events
    tick = max((event.get("ts", 0.0) for event in events), default=None)
    overload = "NORMAL"
    for event in events:
        if event.get("kind") == "overload_transition":
            overload = str(event.get("to_state", overload))
    draining = any(event.get("kind") == "drain_start" for event in events)
    drained = any(event.get("kind") == "drain_complete" for event in events)
    state = "drained" if drained else ("draining" if draining else "serving")
    line = "repro ops console"
    if tick is not None:
        line += f"  tick {_clock(tick)}"
    line += f"  overload {overload}  {state}"
    return line


def _render_services(telemetry: RunTelemetry) -> Optional[str]:
    latest: Dict[str, Tuple[int, str]] = {}
    for event in telemetry.fleet_events:
        if event.get("kind") != "health_transition":
            continue
        service = str(event.get("service", "?"))
        tick = int(event.get("tick", 0))
        latest[service] = (tick, str(event.get("to", "?")))
    services = set(latest)
    for metric in telemetry.metrics.collect("serving.update_seconds"):
        service = dict(metric.labels).get("service")
        if service:
            services.add(service)
    if not services:
        return None
    counts: Dict[str, int] = {}
    for service in services:
        state = latest.get(service, (0, "HEALTHY"))[1]
        counts[state] = counts.get(state, 0) + 1
    summary = "  ".join(f"{state.lower()} {count}"
                        for state, count in sorted(counts.items()))
    lines = [f"services ({len(services)}): {summary}"]
    for service in sorted(services):
        tick, state = latest.get(service, (None, "HEALTHY"))
        if state == "HEALTHY":
            continue                     # only the exceptions need lines
        lines.append(f"  {service:<14} {state:<12} since tick {tick}")
    return "\n".join(lines)


def _render_queues(telemetry: RunTelemetry) -> Optional[str]:
    depth: Dict[str, float] = {}
    for metric in telemetry.metrics.collect("gateway.queue_depth"):
        if isinstance(metric, Gauge):
            depth[dict(metric.labels).get("shard", "?")] = metric.value
    waits: Dict[str, Histogram] = {}
    for metric in telemetry.metrics.collect("gateway.queue_wait_seconds"):
        if isinstance(metric, Histogram) and metric.count:
            waits[dict(metric.labels).get("shard", "?")] = metric
    shards = sorted(set(depth) | set(waits))
    if not shards:
        return None
    lines = ["shard queues"]
    for shard in shards:
        line = f"  {shard:<6} depth {depth.get(shard, 0.0):>4.0f}"
        wait = waits.get(shard)
        if wait is not None:
            line += (f"   wait p50 {1e3 * wait.quantile(0.5):.2f} ms"
                     f" p99 {1e3 * wait.quantile(0.99):.2f} ms")
        lines.append(line)
    return "\n".join(lines)


def _render_budgets(telemetry: RunTelemetry) -> Optional[str]:
    budgets: Dict[str, float] = {}
    for metric in telemetry.metrics.collect("slo.budget_remaining"):
        if isinstance(metric, Gauge):
            budgets[dict(metric.labels).get("objective", "?")] = metric.value
    burns: Dict[str, List[Tuple[str, float]]] = {}
    for metric in telemetry.metrics.collect("slo.burn_rate"):
        if isinstance(metric, Gauge):
            labels = dict(metric.labels)
            burns.setdefault(labels.get("objective", "?"), []).append(
                (labels.get("window", "?"), metric.value))
    firing = _active_windows(telemetry)
    if not budgets and not burns:
        return None
    lines = ["slo budgets"]
    for objective in sorted(set(budgets) | set(burns)):
        line = f"  {objective:<26}"
        budget = budgets.get(objective)
        if budget is not None:
            line += f" budget {100.0 * budget:>6.1f}%"
        for window, rate in sorted(burns.get(objective, [])):
            line += f"  burn[{window}] {rate:.1f}x"
        active = sorted(firing.get(objective, ()))
        line += f"  FIRING {','.join(active)}" if active else "  ok"
        lines.append(line)
    return "\n".join(lines)


def _active_windows(telemetry: RunTelemetry) -> Dict[str, set]:
    state: Dict[str, Dict[str, bool]] = {}
    for event in telemetry.fleet_events:
        kind = event.get("kind")
        if kind not in ("slo_burn", "slo_recover"):
            continue
        objective = str(event.get("objective", "?"))
        window = str(event.get("window", "?"))
        state.setdefault(objective, {})[window] = (kind == "slo_burn")
    return {objective: {w for w, on in windows.items() if on}
            for objective, windows in state.items()}


def _render_alerts(telemetry: RunTelemetry) -> Optional[str]:
    burns = [event for event in telemetry.fleet_events
             if event.get("kind") == "slo_burn"]
    if not burns:
        return None
    lines = [f"alerts (slo_burn): {len(burns)}"]
    for event in burns[-5:]:
        lines.append(
            f"  tick {_clock(event.get('tick', event.get('ts', 0))):>5}  "
            f"{event.get('objective', '?'):<26} window={event.get('window')}"
            f" burn {float(event.get('burn_short', 0.0)):.1f}x")
    return "\n".join(lines)


def _render_acks(telemetry: RunTelemetry) -> Optional[str]:
    accepted = sum(metric.value for metric
                   in telemetry.metrics.collect("gateway.accepted"))
    ack = next((metric for metric
                in telemetry.metrics.collect("gateway.ack_seconds")
                if isinstance(metric, Histogram) and metric.count), None)
    if not accepted and ack is None:
        return None
    line = f"acks: accepted {int(accepted)}"
    duplicates = sum(metric.value for metric
                     in telemetry.metrics.collect("gateway.duplicates"))
    rejected = sum(metric.value for metric
                   in telemetry.metrics.collect("gateway.rejected"))
    line += f"  duplicates {int(duplicates)}  rejected {int(rejected)}"
    if ack is not None:
        line += (f"  p50 {1e3 * ack.quantile(0.5):.2f} ms"
                 f" p99 {1e3 * ack.quantile(0.99):.2f} ms")
        worst = ack.worst_exemplar()
        if worst is not None:
            line += f"  worst trace {worst['trace_id']}"
    return line


def _clock(value: object) -> str:
    """Ticks render as integers; wall-clock floats keep one decimal."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        return str(value)
    if number == int(number):
        return str(int(number))
    return f"{number:.1f}"
