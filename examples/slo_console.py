"""SLOs over a faulted serving run: burns, exemplars, and the console.

``serving_gateway.py`` proves the gateway never loses an ack; this
script asks the operator's next question — *is the service good enough,
and if not, which request do I look at?* — and answers it three ways
from the same telemetry:

1. an :class:`~repro.obs.slo.SloEngine` evaluates a latency objective
   over the streaming ack histogram on a tick clock, burning error
   budget through an injected fault window and emitting ``slo_burn`` /
   ``slo_recover`` events on the edges;
2. every update carries a deterministic trace context
   (BLAKE2b of ``(seed, service, sequence)``), the ack histogram records
   the worst trace per bucket as an exemplar, and the report renders the
   p99 offender's whole trace tree inline;
3. ``repro obs top --once`` renders the one-screen ops console —
   health, queue waits, budget remaining, active burns — from the run
   directory's JSONL alone.

The workload is synthetic and fully seeded (the "gateway" here is
simulated inline so the script stays fast and deterministic); run a real
one with ``python -m repro serve --dir ... `` and point the same console
at its directory.

Run:  python examples/slo_console.py
"""

import tempfile
from pathlib import Path

from repro.obs import (
    BurnWindow,
    EventLog,
    MetricsRegistry,
    SloEngine,
    SloObjective,
    TraceContext,
    TraceLog,
    render_report,
    render_top,
)

TICKS = 60
FAULT_WINDOW = range(20, 40)     # the injected latency regression
SEED = 0


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        registry = MetricsRegistry()
        ack = registry.histogram("gateway.ack_seconds")
        tick_box = [0]
        events = EventLog(directory / "events.jsonl",
                          clock=lambda: float(tick_box[0]))
        traces = TraceLog(directory / "spans.jsonl")

        # One objective: 99% of acks under 50 ms, attributed to svc-0,
        # alerting on a tight window pair scaled to this run's clock.
        engine = SloEngine(
            [SloObjective("ack-p99", "latency", "gateway.ack_seconds",
                          target=0.99, threshold=0.05, service="svc-0")],
            registry=registry, events=events,
            windows=(BurnWindow("fast", short_ticks=5, long_ticks=20,
                                burn_threshold=10.0),))
        engine.subscribe(lambda objective, alert: print(
            f"[tick {alert['tick']:>3}] slo_burn {objective.name}: "
            f"burn {alert['burn_short']:.1f}x, "
            f"budget {100 * alert['budget_remaining']:.0f}%"))

        # One traced "submit" per tick; the fault window runs 40x slow.
        for tick in range(1, TICKS + 1):
            tick_box[0] = tick
            seconds = 0.2 if tick in FAULT_WINDOW else 0.005
            context = TraceContext.mint(SEED, "svc-0", tick)
            ack.observe(seconds, exemplar=context.trace_id)
            traces.record("gateway.submit", context, seconds,
                          service="svc-0", sequence=tick, shard="shard-0",
                          degraded=False)
            child = context.child("worker.update", qualifier="0:1")
            traces.record("worker.update", child, 0.6 * seconds,
                          parent_span_id=context.span_id, depth=1,
                          service="svc-0", sequence=tick, shard="shard-0",
                          incarnation=0, replay=False, duplicate=False)
            engine.step(tick)

        registry.counter("gateway.accepted", tenant="default").inc(TICKS)
        registry.gauge("gateway.queue_depth", shard="shard-0").set(2)
        registry.dump(directory / "metrics.jsonl")
        events.close()
        traces.close()

        print()
        print("=" * 66)
        print("repro obs top --once  (the live console's snapshot)")
        print("=" * 66)
        print(render_top(directory))

        print()
        print("=" * 66)
        print("repro obs report  (slo status + exemplar drill-down)")
        print("=" * 66)
        print(render_report(directory))


if __name__ == "__main__":
    main()
