"""Alias/escape analysis and liveness/buffer-coloring over traced graphs."""

import numpy as np
import pytest

from repro.analysis.alias import (
    MemCoverageError,
    compose_perms,
    escaping_groups,
    group_bytes,
    inplace_candidates,
    invert_perm,
    is_identity_perm,
    storage_groups,
)
from repro.analysis.liveness import analyze_liveness, last_uses
from repro.analysis.trace import trace
from repro.nn.tensor import Tensor


def _traced(fn, *inputs):
    return trace(fn, inputs=inputs)


class TestPermAlgebra:
    def test_compose_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 4, 5))
        for _ in range(20):
            first = tuple(rng.permutation(4).tolist())
            second = tuple(rng.permutation(4).tolist())
            composed = compose_perms(first, second)
            np.testing.assert_array_equal(
                x.transpose(first).transpose(second), x.transpose(composed))

    def test_invert_roundtrip(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            perm = tuple(rng.permutation(5).tolist())
            assert is_identity_perm(compose_perms(perm, invert_perm(perm)))
            assert is_identity_perm(compose_perms(invert_perm(perm), perm))

    def test_identity(self):
        assert is_identity_perm((0, 1, 2))
        assert not is_identity_perm((0, 2, 1))


class TestStorageGroups:
    def test_transpose_shares_parent_storage(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: (x.transpose((1, 0)) * 2.0).sum(), x)
        groups = storage_groups(graph.nodes)
        ops = {n.op: n.index for n in graph.nodes if n.kind == "op"}
        leaf = [n.index for n in graph.nodes if n.kind != "op"][0]
        assert groups[ops["transpose"]] == groups[leaf]
        # mul allocates fresh storage: its own group.
        assert groups[ops["mul"]] != groups[leaf]

    def test_reshape_conservatively_merges(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: x.reshape((6,)).sum(), x)
        groups = storage_groups(graph.nodes)
        reshape = next(n.index for n in graph.nodes if n.op == "reshape")
        leaf = [n.index for n in graph.nodes if n.kind != "op"][0]
        assert groups[reshape] == groups[leaf]

    def test_unknown_op_raises(self):
        class FakeStep:
            kind = "op"
            op = "totally_new_op"
            parents = (0,)
            shape = (2,)

        class FakeLeaf:
            kind = "const"
            op = "leaf"
            parents = ()
            shape = (2,)

        with pytest.raises(MemCoverageError, match="totally_new_op"):
            storage_groups([FakeLeaf(), FakeStep()])


class TestEscape:
    def test_output_and_leaf_groups_escape(self):
        x = Tensor(np.ones((2, 2)))
        graph = _traced(lambda: (x * x).sum(), x)
        groups = storage_groups(graph.nodes)
        escaped = escaping_groups(graph.nodes, graph.outputs, groups)
        for node in graph.nodes:
            if node.kind != "op":
                assert groups[node.index] in escaped
        assert groups[graph.outputs[0]] in escaped

    def test_interior_op_does_not_escape(self):
        x = Tensor(np.ones((2, 2)))
        graph = _traced(lambda: (x * x).sum(), x)
        groups = storage_groups(graph.nodes)
        escaped = escaping_groups(graph.nodes, graph.outputs, groups)
        mul = next(n.index for n in graph.nodes if n.op == "mul")
        assert groups[mul] not in escaped


class TestLastUses:
    def test_outputs_get_sentinel(self):
        x = Tensor(np.ones((2, 2)))
        graph = _traced(lambda: (x * x).sum(), x)
        last = last_uses(graph.nodes, graph.outputs)
        assert last[graph.outputs[0]] == len(graph.nodes)

    def test_interior_dies_at_consumer(self):
        x = Tensor(np.ones((2, 2)))
        graph = _traced(lambda: (x * x).sum(), x)
        mul = next(n.index for n in graph.nodes if n.op == "mul")
        total = next(n.index for n in graph.nodes if n.op == "sum")
        last = last_uses(graph.nodes, graph.outputs)
        assert last[mul] == total


class TestColoring:
    def test_sequential_chain_reuses_buffers(self):
        # 8 same-shaped elementwise steps with non-overlapping lifetimes
        # must not need 8 distinct buffers.
        x = Tensor(np.ones((32, 32)))

        def fn():
            y = x
            for _ in range(8):
                y = y.tanh()
            return y.sum()

        graph = _traced(fn, x)
        memory = analyze_liveness(graph.nodes, graph.outputs)
        tanh_count = sum(1 for n in graph.nodes if n.op == "tanh")
        assert tanh_count == 8
        assert memory.num_buffers < tanh_count
        assert memory.pool_bytes < memory.naive_bytes
        assert memory.peak_live_bytes <= memory.pool_bytes

    def test_view_keeps_group_alive(self):
        # The transpose view of ``a`` is consumed late, so ``a``'s storage
        # must not be recycled in between even though ``a`` itself has no
        # later direct use.
        x = Tensor(np.ones((4, 4)))

        def fn():
            a = x * 2.0
            view = a.transpose((1, 0))
            b = x.tanh()
            return (b + view).sum()

        graph = _traced(fn, x)
        groups = storage_groups(graph.nodes)
        memory = analyze_liveness(graph.nodes, graph.outputs)
        mul = next(n.index for n in graph.nodes if n.op == "mul")
        transpose = next(n.index for n in graph.nodes if n.op == "transpose")
        add = next(n.index for n in graph.nodes if n.op == "add")
        assert groups[transpose] == groups[mul]
        # The group's lifetime extends to the view's consumer.
        group_last = max(memory.last_use[i] for i in (mul, transpose))
        assert group_last >= add

    def test_naive_counts_every_op_output(self):
        x = Tensor(np.ones((2, 2)))
        graph = _traced(lambda: x.tanh().tanh().sum(), x)
        memory = analyze_liveness(graph.nodes, graph.outputs)
        # two 2x2 float64 tanh outputs + one scalar sum
        assert memory.naive_bytes == 2 * 32 + 8


class TestInplaceCandidates:
    def test_dying_elementwise_input_is_candidate(self):
        x = Tensor(np.ones((4, 4)))
        graph = _traced(lambda: x.tanh().sigmoid().sum(), x)
        groups = storage_groups(graph.nodes)
        last = last_uses(graph.nodes, graph.outputs)
        escaped = escaping_groups(graph.nodes, graph.outputs, groups)
        pairs = inplace_candidates(graph.nodes, last, groups, escaped)
        tanh = next(n.index for n in graph.nodes if n.op == "tanh")
        sigmoid = next(n.index for n in graph.nodes if n.op == "sigmoid")
        assert (sigmoid, tanh) in pairs

    def test_leaf_input_never_candidate(self):
        x = Tensor(np.ones((4, 4)))
        graph = _traced(lambda: x.tanh().sum(), x)
        groups = storage_groups(graph.nodes)
        last = last_uses(graph.nodes, graph.outputs)
        escaped = escaping_groups(graph.nodes, graph.outputs, groups)
        tanh = next(n.index for n in graph.nodes if n.op == "tanh")
        leaf = [n.index for n in graph.nodes if n.kind != "op"][0]
        assert (tanh, leaf) not in inplace_candidates(
            graph.nodes, last, groups, escaped)


class TestGroupBytes:
    def test_view_group_sized_by_largest_member(self):
        x = Tensor(np.ones((2, 3)))
        graph = _traced(lambda: (x.transpose((1, 0)) * 1.0).sum(), x)
        groups = storage_groups(graph.nodes)
        sizes = group_bytes(graph.nodes, groups)
        leaf = [n.index for n in graph.nodes if n.kind != "op"][0]
        assert sizes[groups[leaf]] == 6 * 8
