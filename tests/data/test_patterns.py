"""Normal-pattern generators."""

import numpy as np
import pytest

from repro.data import (
    ArNoise,
    FeaturePattern,
    NormalPattern,
    SawtoothWave,
    Sinusoid,
    SquareWave,
    Trend,
    perturb_pattern,
    random_pattern,
)


class TestWaveforms:
    def test_sinusoid_period(self):
        wave = Sinusoid(period=10.0, amplitude=2.0)
        t = np.arange(20)
        values = wave.sample(t)
        np.testing.assert_allclose(values[:10], values[10:], atol=1e-10)
        assert np.abs(values).max() <= 2.0 + 1e-9

    def test_square_wave_levels(self):
        wave = SquareWave(period=8.0, amplitude=1.5)
        values = wave.sample(np.arange(16))
        assert set(np.round(np.abs(values), 6)) == {1.5}

    def test_sawtooth_bounded(self):
        values = SawtoothWave(period=12.0, amplitude=1.0).sample(np.arange(48))
        assert values.min() >= -1.0 - 1e-9 and values.max() <= 1.0 + 1e-9

    def test_trend_is_linear(self):
        values = Trend(slope=2.0).sample(np.arange(0, 3000, 1000, dtype=float))
        np.testing.assert_allclose(np.diff(values), 2.0)


class TestArNoise:
    def test_deterministic_given_rng_seed(self):
        noise = ArNoise(phi=0.5, sigma=0.1)
        a = noise.sample(100, np.random.default_rng(7))
        b = noise.sample(100, np.random.default_rng(7))
        np.testing.assert_allclose(a, b)

    def test_autocorrelation_positive(self):
        noise = ArNoise(phi=0.8, sigma=0.1).sample(5000, np.random.default_rng(1))
        corr = np.corrcoef(noise[:-1], noise[1:])[0, 1]
        assert corr > 0.5


class TestNormalPattern:
    def _pattern(self):
        feature = FeaturePattern((Sinusoid(20.0),), ArNoise(0.3, 0.05), offset=1.0)
        return NormalPattern((feature, feature), mixing=np.eye(2))

    def test_sample_shape(self):
        series = self._pattern().sample(200, np.random.default_rng(0))
        assert series.shape == (200, 2)

    def test_offset_applied(self):
        series = self._pattern().sample(2000, np.random.default_rng(0))
        assert abs(series.mean() - 1.0) < 0.1

    def test_t0_continuation(self):
        pattern = self._pattern()
        rng = np.random.default_rng(0)
        full = pattern.sample(100, rng, t0=0)
        rng = np.random.default_rng(0)
        shifted = pattern.sample(100, rng, t0=100)
        # Deterministic parts at t0=100 differ from t0=0 unless period divides
        assert full.shape == shifted.shape

    def test_dominant_periods(self):
        feature = FeaturePattern((Sinusoid(20.0, 1.0), Sinusoid(5.0, 0.2)))
        pattern = NormalPattern((feature,))
        assert pattern.dominant_periods() == [20.0]


class TestRandomPattern:
    def test_deterministic_per_seed(self):
        a = random_pattern(np.random.default_rng(3), 4, diversity=1.0)
        b = random_pattern(np.random.default_rng(3), 4, diversity=1.0)
        sa = a.sample(100, np.random.default_rng(0))
        sb = b.sample(100, np.random.default_rng(0))
        np.testing.assert_allclose(sa, sb)

    def test_num_features_respected(self):
        pattern = random_pattern(np.random.default_rng(0), 5)
        assert pattern.num_features == 5

    def test_rejects_zero_features(self):
        with pytest.raises(ValueError):
            random_pattern(np.random.default_rng(0), 0)

    def test_diversity_spreads_periods(self):
        rng_hi = np.random.default_rng(11)
        rng_lo = np.random.default_rng(11)
        periods_hi, periods_lo = [], []
        for _ in range(20):
            periods_hi += random_pattern(rng_hi, 1, diversity=1.0).dominant_periods()
            periods_lo += random_pattern(rng_lo, 1, diversity=0.0).dominant_periods()
        assert np.std(periods_hi) > np.std(periods_lo)

    def test_zero_diversity_uses_base_periods(self):
        pattern = random_pattern(np.random.default_rng(5), 2, diversity=0.0,
                                 base_periods=(16.0, 4.0))
        for feature in pattern.features:
            assert getattr(feature.waveforms[0], "period") in (16.0, 4.0)


class TestPerturbPattern:
    def test_small_scale_keeps_pattern_close(self):
        base = random_pattern(np.random.default_rng(2), 3, diversity=0.8)
        varied = perturb_pattern(base, np.random.default_rng(9), scale=0.02)
        base_periods = base.dominant_periods()
        varied_periods = varied.dominant_periods()
        for original, perturbed in zip(base_periods, varied_periods):
            assert abs(perturbed - original) / original < 0.15

    def test_preserves_feature_count(self):
        base = random_pattern(np.random.default_rng(2), 4)
        assert perturb_pattern(base, np.random.default_rng(1)).num_features == 4
