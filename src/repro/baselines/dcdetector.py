"""DCdetector-lite (Yang et al., KDD 2023).

The original learns permutation-invariant representations with a dual
attention design — a patch-wise branch and an in-patch branch — trained
purely contrastively (no reconstruction): on normal data the two branches'
attention distributions agree, so at test time their discrepancy is the
anomaly score.  This reduction keeps the dual branch + pure contrastive KL
structure with single attention blocks.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, NeuralWindowDetector
from repro.nn.modules.attention import MultiheadSelfAttention
from repro.nn.modules.base import Module
from repro.nn.modules.linear import Linear
from repro.nn.tensor import Tensor

__all__ = ["DcDetectorModel", "DcDetector"]


class DcDetectorModel(Module):
    """Dual-branch attention producing two per-timestep distributions."""

    def __init__(self, window: int, num_features: int, dim: int = 16,
                 heads: int = 4, patch: int = 5,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if window % patch:
            raise ValueError("window must divide evenly into patches")
        self.patch = patch
        self.window = window
        self.embed_point = Linear(num_features, dim, rng=rng)
        self.embed_patch = Linear(num_features * patch, dim, rng=rng)
        self.point_attention = MultiheadSelfAttention(dim, heads, rng=rng)
        self.patch_attention = MultiheadSelfAttention(dim, heads, rng=rng)

    def forward(self, windows: Tensor):
        batch, window, features = windows.shape
        point_embedded = self.embed_point(windows)
        _, point_assoc = self.point_attention(point_embedded,
                                              return_attention=True)
        patches = windows.reshape(batch, window // self.patch,
                                  self.patch * features)
        patch_embedded = self.embed_patch(patches)
        _, patch_assoc = self.patch_attention(patch_embedded,
                                              return_attention=True)
        return point_assoc, patch_assoc

    def aligned_distributions(self, point_assoc, patch_assoc):
        """Upsample the patch attention rows to per-timestep resolution.

        Returns two stochastic row distributions of shape ``(B, H, T, T)``.
        """
        expand = self.patch
        upsampled = np.repeat(np.repeat(patch_assoc, expand, axis=-2),
                              expand, axis=-1) / expand
        return upsampled


class DcDetector(NeuralWindowDetector):
    """DCdetector-lite on the shared detector API."""

    name = "DCdetector"

    def __init__(self, config: BaselineConfig | None = None, dim: int = 16,
                 heads: int = 4, patch: int = 5):
        super().__init__(config)
        self.dim = dim
        self.heads = heads
        self.patch = patch

    def build_model(self, num_features: int) -> Module:
        return DcDetectorModel(self.config.window, num_features, self.dim,
                               self.heads, self.patch, rng=self.rng)

    def _discrepancy_tensor(self, model, windows: Tensor) -> Tensor:
        """Differentiable symmetric KL between the two branch distributions."""
        point_assoc, patch_assoc = model(windows)
        upsampled = Tensor(
            np.clip(model.aligned_distributions(None, patch_assoc.data), 1e-8, 1.0)
        )
        point_safe = point_assoc.clip(1e-8, 1.0)
        kl_forward = (point_safe * (point_safe.log() - upsampled.log())).sum(axis=-1)
        kl_backward = (upsampled * (upsampled.log() - point_safe.log())).sum(axis=-1)
        return (kl_forward + kl_backward).mean(axis=1)  # (B, T)

    def model_loss(self, model: Module, windows: Tensor,
                   service_id: str) -> Tensor:
        # Pure contrastive objective: branches must agree on normal data.
        return self._discrepancy_tensor(model, windows).mean()

    def window_errors(self, model: Module, windows: np.ndarray,
                      service_id: str) -> np.ndarray:
        return self._discrepancy_tensor(model, Tensor(windows)).data
