"""Positional encodings for the attention-based models."""

from __future__ import annotations

import numpy as np

from repro.analysis.spec import ContractError, TensorSpec
from repro.nn.modules.base import Module
from repro.nn.tensor import Tensor

__all__ = ["sinusoidal_positions", "PositionalEncoding"]


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Classic transformer sinusoidal position table ``(length, dim)``."""
    if length < 1 or dim < 2:
        raise ValueError("length must be >= 1 and dim >= 2")
    position = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((length, dim))
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: (dim + 1) // 2])
    return table


class PositionalEncoding(Module):
    """Add fixed sinusoidal positions to ``(N, T, D)`` inputs."""

    def __init__(self, max_length: int, dim: int):
        super().__init__()
        self.register_buffer("table", sinusoidal_positions(max_length, dim))

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[1]
        if length > self.table.shape[0]:
            raise ValueError(
                f"sequence length {length} exceeds table size "
                f"{self.table.shape[0]}"
            )
        return x + Tensor(self.table[None, :length])

    def contract(self, spec: TensorSpec) -> TensorSpec:
        spec.require_ndim(3, "PositionalEncoding")
        spec.require_axis(-1, self.table.shape[1], "PositionalEncoding", "dim")
        length = spec.shape[1]
        if length.is_concrete and length.value > self.table.shape[0]:
            raise ContractError(
                f"PositionalEncoding: sequence length {length} exceeds the "
                f"table size {self.table.shape[0]}"
            )
        return spec
