"""LSTM-NDT baseline and the NDT thresholding rule."""

import numpy as np
import pytest

from repro.baselines import BaselineConfig, LstmNdtDetector, ndt_threshold


class TestNdtThreshold:
    def test_separates_clear_outliers(self, rng):
        errors = np.concatenate([np.abs(rng.normal(0, 0.1, 500)),
                                 np.full(5, 5.0)])
        threshold = ndt_threshold(errors)
        assert 0.5 < threshold < 5.0

    def test_degenerate_inputs(self):
        assert ndt_threshold(np.array([1.0, 1.0])) == 1.0
        assert np.isfinite(ndt_threshold(np.full(100, 2.0)))

    def test_no_outliers_yields_high_threshold(self, rng):
        errors = np.abs(rng.normal(0, 0.1, 500))
        threshold = ndt_threshold(errors)
        assert threshold > errors.mean()


class TestLstmNdtDetector:
    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            LstmNdtDetector(smoothing=0.0)

    def test_fit_score_and_spike_detection(self, rng):
        t = np.arange(768)
        train = np.stack([np.sin(2 * np.pi * t / 16),
                          np.cos(2 * np.pi * t / 16)], axis=1)
        train += 0.05 * rng.normal(size=train.shape)
        test = train.copy()
        test[300:303] += 6.0
        detector = LstmNdtDetector(
            BaselineConfig(window=40, epochs=3, train_stride=8)
        )
        detector.fit(["svc"], [train])
        scores = detector.score("svc", test)
        assert scores.shape == (768,)
        floor = np.median(scores)
        assert scores[300:306].max() > 2.0 * floor

    def test_scores_are_smoothed(self, rng):
        """EWMA smoothing: after a spike the score decays, not drops."""
        detector = LstmNdtDetector(
            BaselineConfig(window=20, epochs=1, train_stride=8),
            smoothing=0.2,
        )
        train = rng.normal(size=(200, 1))
        detector.fit(["svc"], [train])
        windows = rng.normal(size=(1, 20, 1))
        windows[0, 10, 0] = 20.0
        errors = detector.window_errors(detector.model, windows, "svc")[0]
        assert errors[11] > errors[13] > errors[16]
