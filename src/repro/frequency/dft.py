"""Full-spectrum DFT helpers built on ``numpy.fft``.

These are the statistics-side tools (Tables II/III, Fig. 5a use them); the
differentiable, subset-based transforms live in
:mod:`repro.frequency.basis` and :mod:`repro.frequency.context_aware`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rfft_coefficients",
    "rfft_amplitude",
    "irfft_signal",
    "power_spectrum",
    "dominant_indices",
    "normalized_spectrum",
]


def rfft_coefficients(x: np.ndarray) -> np.ndarray:
    """Complex rFFT over the last axis."""
    return np.fft.rfft(x, axis=-1)


def rfft_amplitude(x: np.ndarray) -> np.ndarray:
    """Amplitude spectrum ``|rfft(x)|`` over the last axis."""
    return np.abs(np.fft.rfft(x, axis=-1))


def irfft_signal(coeffs: np.ndarray, window: int) -> np.ndarray:
    """Inverse of :func:`rfft_coefficients` for a known window length."""
    return np.fft.irfft(coeffs, n=window, axis=-1)


def power_spectrum(x: np.ndarray) -> np.ndarray:
    """Squared amplitude spectrum."""
    amplitude = rfft_amplitude(x)
    return amplitude * amplitude


def dominant_indices(x: np.ndarray, k: int, skip_dc: bool = True) -> np.ndarray:
    """Indices of the ``k`` strongest rFFT bins of a single window.

    The DC bin mostly encodes the window mean; the paper's "strongest
    signals" are oscillatory components, so DC is skipped by default.
    """
    amplitude = rfft_amplitude(x)
    if amplitude.ndim != 1:
        raise ValueError("dominant_indices expects a single 1-D window")
    if skip_dc:
        amplitude = amplitude.copy()
        amplitude[0] = -np.inf
    k = min(k, amplitude.size if not skip_dc else amplitude.size - 1)
    order = np.argsort(amplitude)[::-1]
    return np.sort(order[:k])


def normalized_spectrum(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Amplitudes normalised to sum to one over the last axis (paper Def. 2)."""
    amplitude = rfft_amplitude(x)
    total = amplitude.sum(axis=-1, keepdims=True)
    return amplitude / np.maximum(total, eps)
