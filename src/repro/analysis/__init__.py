"""``repro.analysis`` — correctness tooling for the NumPy autograd stack.

Three layers, each usable on its own:

* :func:`detect_anomaly` — autograd anomaly mode.  Inside the context every
  op's forward output and backward gradients are checked for NaN/Inf and
  the first offender is reported with per-op provenance (op name, parent
  shapes/dtypes, creation stack).  Complemented by tape version counters in
  :class:`repro.nn.Tensor` that make in-place mutation of a taped tensor
  raise instead of silently corrupting gradients.
* :func:`check_model` — static shape/dtype contract checking.  Layers
  declare ``contract`` methods; ``check_model(model, ("N", 40, 3))``
  validates an architecture symbolically without running any data.
* :mod:`repro.analysis.lint` — AST lint with repo-specific rules
  (``python -m repro.analysis.lint`` or ``repro lint``).
* :mod:`repro.analysis.dataflow` / :mod:`repro.analysis.gradflow` —
  abstract interpretation of traced autograd graphs (interval × finiteness
  domain, gradient-flow audit).  ``repro analyze`` drives both over every
  shipped model; :mod:`repro.analysis.audit` holds that harness (imported
  lazily — it pulls in the model zoo).
"""

from repro.analysis.anomaly import AnomalyError, detect_anomaly
from repro.analysis.contracts import check_model, input_spec
from repro.analysis.dataflow import Finding, coverage, propagate
from repro.analysis.domains import Interval
from repro.analysis.gradflow import audit_gradient_flow
from repro.analysis.lint import Violation, lint_paths, lint_source
from repro.analysis.spec import ContractError, Dim, TensorSpec, child_contract, merge_dtype
from repro.analysis.trace import Graph, GraphNode, trace

__all__ = [
    "AnomalyError",
    "detect_anomaly",
    "check_model",
    "input_spec",
    "ContractError",
    "Dim",
    "TensorSpec",
    "child_contract",
    "merge_dtype",
    "Violation",
    "lint_paths",
    "lint_source",
    "Interval",
    "Finding",
    "propagate",
    "coverage",
    "Graph",
    "GraphNode",
    "trace",
    "audit_gradient_flow",
]
