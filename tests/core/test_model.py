"""MACE model: characterization, pattern extraction, forward/loss, ablations."""

import numpy as np
import pytest

from repro.core import (
    FrequencyCharacterization,
    MaceConfig,
    MaceModel,
    PatternExtractor,
    frequency_marker_channels,
)
from repro.frequency import ServiceSubspace
from repro.nn import Tensor


def _periodic(length, period, features, rng, noise=0.05):
    t = np.arange(length)
    cols = [np.sin(2 * np.pi * t / (period + 2 * f)) for f in range(features)]
    return np.stack(cols, axis=1) + noise * rng.normal(size=(length, features))


class TestMarkers:
    def test_marker_layout(self, rng):
        series = _periodic(800, 16, 2, rng)
        subspace = ServiceSubspace.fit(series, window=40, k=3)
        markers = frequency_marker_channels(subspace)
        assert markers.shape == (2, 2, 6)
        # sine channel marks odd (imaginary) slots only
        assert np.all(markers[0, :, 0::2] == 0)
        np.testing.assert_allclose(markers[0, :, 1::2], subspace.frequencies)
        # cosine channel marks even slots only
        assert np.all(markers[1, :, 1::2] == 0)


class TestCharacterization:
    def test_output_shape_and_bounds(self, rng):
        series = _periodic(800, 16, 3, rng)
        subspace = ServiceSubspace.fit(series, window=40, k=4)
        module = FrequencyCharacterization(channels=6)
        coeffs = Tensor(rng.normal(size=(5, 3, 8)))
        out = module(coeffs, subspace)
        assert out.shape == (15, 6, 8)
        assert np.all(np.abs(out.data) <= 1.0)

    def test_marker_ablation_changes_input_channels(self):
        with_markers = FrequencyCharacterization(channels=4, use_markers=True)
        without = FrequencyCharacterization(channels=4, use_markers=False)
        assert with_markers.conv.in_channels == 3
        assert without.conv.in_channels == 1

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            FrequencyCharacterization(kernel_size=4)

    def test_gradients_flow(self, rng):
        series = _periodic(800, 16, 2, rng)
        subspace = ServiceSubspace.fit(series, window=40, k=3)
        module = FrequencyCharacterization(channels=4)
        coeffs = Tensor(rng.normal(size=(2, 2, 6)), requires_grad=True)
        module(coeffs, subspace).sum().backward()
        assert coeffs.grad is not None


class TestPatternExtractor:
    def test_fit_and_transforms(self, rng):
        extractor = PatternExtractor(window=40, num_bases=4)
        series = _periodic(600, 16, 2, rng)
        extractor.fit(["svc"], [series])
        assert "svc" in extractor
        dft, idft = extractor.transforms("svc")
        assert dft.subspace is extractor.subspace("svc")
        assert extractor.coefficient_width("svc") == 8

    def test_transform_cache_invalidated_on_refit(self, rng):
        extractor = PatternExtractor(window=40, num_bases=4)
        series = _periodic(600, 16, 2, rng)
        extractor.fit_service("svc", series)
        first, _ = extractor.transforms("svc")
        extractor.fit_service("svc", _periodic(600, 10, 2, rng))
        second, _ = extractor.transforms("svc")
        assert first is not second

    def test_full_spectrum_ablation(self, rng):
        extractor = PatternExtractor(window=40, num_bases=4, context_aware=False)
        series = _periodic(600, 16, 2, rng)
        extractor.fit_service("svc", series)
        assert extractor.subspace("svc").k == 21  # all bins of window 40

    def test_unknown_service(self):
        with pytest.raises(KeyError):
            PatternExtractor(40, 4).subspace("nope")


class TestMaceModel:
    @pytest.fixture
    def setup(self, rng):
        config = MaceConfig(window=40, num_bases=4, channels=4, epochs=1)
        model = MaceModel(config, rng=rng)
        extractor = PatternExtractor(config.window, config.num_bases)
        series = _periodic(600, 16, 2, rng)
        extractor.fit_service("svc", series)
        windows = np.stack([series[i:i + 40] for i in range(8)])
        return model, extractor, windows

    def test_forward_shapes(self, setup):
        model, extractor, windows = setup
        output = model(Tensor(windows), extractor, "svc")
        assert output.amplified.shape == windows.shape
        assert output.reconstruction_peak.shape == windows.shape
        assert output.reconstruction_valley.shape == windows.shape

    def test_loss_scalar_and_backward(self, setup):
        model, extractor, windows = setup
        loss = model.loss(model(Tensor(windows), extractor, "svc"))
        assert loss.data.shape == ()
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_timestep_errors_shape(self, setup):
        model, extractor, windows = setup
        errors = model.timestep_errors(model(Tensor(windows), extractor, "svc"))
        assert errors.shape == (8, 40)
        assert np.all(errors >= 0)

    def test_rejects_bad_rank(self, setup):
        model, extractor, _ = setup
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((40, 2))), extractor, "svc")

    def test_ablation_flags(self, rng):
        base = MaceConfig(window=40, num_bases=4, channels=4)
        no_amp = MaceModel(base.ablate(use_time_amplifier=False), rng=rng)
        no_dual = MaceModel(base.ablate(use_dualistic_freq=False), rng=rng)
        assert no_dual.peak_branch.encoder.gamma == 1
        extractor = PatternExtractor(40, 4)
        series = _periodic(600, 16, 2, rng)
        extractor.fit_service("svc", series)
        windows = Tensor(np.stack([series[i:i + 40] for i in range(4)]))
        out = no_amp(windows, extractor, "svc")
        np.testing.assert_array_equal(out.amplified.data, windows.data)

    def test_select_max_vs_average(self, setup, rng):
        model, extractor, windows = setup
        output = model(Tensor(windows), extractor, "svc")
        max_errors = model.timestep_errors(output)
        model.config = model.config.ablate(select_max_error=False)
        avg_errors = model.timestep_errors(output)
        assert np.all(max_errors >= avg_errors - 1e-12)

    def test_config_ablate_returns_copy(self):
        config = MaceConfig()
        changed = config.ablate(gamma_freq=3)
        assert config.gamma_freq == 7 and changed.gamma_freq == 3
