"""Deterministic fault injection for chaos-testing the serving runtime.

Everything is driven by one seeded generator, so a chaos run is exactly
reproducible from its seed: the same observations get corrupted the same
way and the same scoring calls raise.  Three fault families, matching what
production actually sees:

* **observation corruption** — NaN, ±Inf, gross spikes, and dropped rows
  (``corrupt`` returns ``None``) at a configurable rate;
* **scoring faults** — :class:`FaultyDetector` wraps any detector and
  raises :class:`InjectedFault` (or returns NaN scores) from ``score`` at
  a configurable rate;
* **storage faults** — :meth:`FaultInjector.truncate_file` chops the tail
  off a checkpoint/weights file, simulating a crash mid-write on a
  non-atomic filesystem;
* **worker faults** — :meth:`FaultInjector.plan_worker_faults` draws a
  deterministic schedule of training-worker failures (``worker_kill``,
  ``worker_hang``, ``nan_grad``) that the
  :class:`~repro.runtime.orchestrator.FleetOrchestrator` executes inside
  its worker processes;
* **action faults** — :meth:`FaultInjector.plan_action_faults` draws a
  deterministic schedule of remediation-path failures (``action_fail``,
  ``action_hang``, ``recovery_relapse``) so the closed-loop drill
  harness (:mod:`repro.runtime.remediation.drill`) can chaos-test the
  remediation machinery itself, not just the scoring path it repairs;
* **gateway faults** — :meth:`FaultInjector.plan_gateway_faults` draws a
  deterministic schedule of network/queue-level delivery failures
  (``deliver_delayed``, ``deliver_duplicate``, ``deliver_dropped``,
  ``worker_slow_start``) that the serving gateway's traffic generator
  (:mod:`repro.runtime.gateway`) executes on the client side of the ack
  protocol, plus worker kills mid-traffic scheduled by the chaos suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.detector import AnomalyDetector

__all__ = ["InjectedFault", "FaultInjector", "FaultyDetector",
           "WorkerFault", "WORKER_FAULT_KINDS",
           "ActionFault", "ACTION_FAULT_KINDS",
           "GatewayFault", "GATEWAY_FAULT_KINDS"]

_CORRUPTION_KINDS = ("nan", "inf", "spike", "drop")

WORKER_FAULT_KINDS = ("worker_kill", "worker_hang", "nan_grad")

ACTION_FAULT_KINDS = ("action_fail", "action_hang", "recovery_relapse")

GATEWAY_FAULT_KINDS = ("deliver_delayed", "deliver_duplicate",
                       "deliver_dropped", "worker_slow_start")


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled worker-level training fault.

    ``worker_kill`` hard-exits the worker process at the ``epoch``
    boundary (SIGKILL semantics: no cleanup, no result file);
    ``worker_hang`` blocks there until the orchestrator's per-task timeout
    re-dispatches the job; ``nan_grad`` poisons the loss of batch
    ``batch`` of ``epoch`` so every gradient turns NaN.  ``repeat=False``
    models a transient fault (fires on the first attempt / first pass
    only); ``repeat=True`` models a persistent one that eventually drives
    the group to FAILED.
    """

    kind: str
    epoch: int = 1
    batch: int = 0
    repeat: bool = False

    def __post_init__(self):
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )


@dataclass(frozen=True)
class ActionFault:
    """One scheduled remediation-action fault for a service.

    ``action_fail`` makes the next launched remediation action fail
    immediately (the runner records FAILED without executing it);
    ``action_hang`` makes it never complete, so the runner's declared
    ``timeout_ticks`` must fire; ``recovery_relapse`` lets the action
    succeed, then re-breaks the service ``relapse_ticks`` into the
    verification dwell — the rollback-and-escalate path's own chaos test.
    ``repeat=False`` fires on the first affected action/verification
    only; ``repeat=True`` keeps firing and eventually drives the incident
    up the escalation ladder to its terminal rung.
    """

    kind: str
    relapse_ticks: int = 8
    repeat: bool = False

    def __post_init__(self):
        if self.kind not in ACTION_FAULT_KINDS:
            raise ValueError(
                f"unknown action fault kind {self.kind!r}; "
                f"expected one of {ACTION_FAULT_KINDS}"
            )
        if self.relapse_ticks < 1:
            raise ValueError("relapse_ticks must be >= 1")


@dataclass(frozen=True)
class GatewayFault:
    """One scheduled delivery-path fault for a gateway service stream.

    Delivery faults fire on the client side of the ack protocol at the
    service's ``at_update``-th submission (1-based): ``deliver_delayed``
    holds the submission back for ``delay_updates`` ticks of the traffic
    schedule before sending it; ``deliver_duplicate`` sends the same
    sequence twice (idempotent apply must absorb the second copy);
    ``deliver_dropped`` loses the first transmission so the at-least-once
    client must retry it.  ``worker_slow_start`` is worker-side: every
    (re)spawn of the shard serving this service stalls ``delay_seconds``
    before draining its queue, exercising backpressure during warm-up.
    ``repeat=True`` re-fires the fault on every subsequent multiple of
    ``at_update`` instead of once.
    """

    kind: str
    at_update: int = 1
    delay_updates: int = 2
    delay_seconds: float = 0.2
    repeat: bool = False

    def __post_init__(self):
        if self.kind not in GATEWAY_FAULT_KINDS:
            raise ValueError(
                f"unknown gateway fault kind {self.kind!r}; "
                f"expected one of {GATEWAY_FAULT_KINDS}"
            )
        if self.at_update < 1:
            raise ValueError("at_update must be >= 1")
        if self.delay_updates < 1:
            raise ValueError("delay_updates must be >= 1")
        if self.delay_seconds < 0.0:
            raise ValueError("delay_seconds must be >= 0")

    def fires_at(self, update_index: int) -> bool:
        """Whether this fault fires on the service's ``update_index``-th
        submission (1-based)."""
        if update_index < 1:
            return False
        if self.repeat:
            return update_index % self.at_update == 0
        return update_index == self.at_update


class InjectedFault(RuntimeError):
    """Raised from an injected scoring-path fault."""


class FaultInjector:
    """Seeded source of observation, scoring, and storage faults.

    Parameters
    ----------
    seed:
        Seeds the private generator; equal seeds give equal fault trains.
    corrupt_prob:
        Per-observation probability of corruption (the paper-motivated
        chaos suite uses 0.02).
    raise_prob:
        Per-scoring-call probability that a wrapped detector raises
        (1/200 in the chaos suite).
    nan_score_prob:
        Per-scoring-call probability that a wrapped detector returns NaN
        scores instead of raising — the sneakier failure mode.
    kinds:
        Which corruption kinds to draw from (subset of
        ``("nan", "inf", "spike", "drop")``).
    spike_scale:
        Multiplier applied to a corrupted feature for ``"spike"`` faults.
    """

    def __init__(self, seed: int = 0, corrupt_prob: float = 0.02,
                 raise_prob: float = 1.0 / 200.0,
                 nan_score_prob: float = 0.0,
                 kinds: Sequence[str] = _CORRUPTION_KINDS,
                 spike_scale: float = 1e6):
        unknown = sorted(set(kinds) - set(_CORRUPTION_KINDS))
        if unknown:
            raise ValueError(f"unknown corruption kinds: {unknown}")
        if not kinds:
            raise ValueError("need at least one corruption kind")
        for name, prob in (("corrupt_prob", corrupt_prob),
                           ("raise_prob", raise_prob),
                           ("nan_score_prob", nan_score_prob)):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.seed = seed
        self.corrupt_prob = corrupt_prob
        self.raise_prob = raise_prob
        self.nan_score_prob = nan_score_prob
        self.kinds = tuple(kinds)
        self.spike_scale = spike_scale
        self._rng = np.random.default_rng(seed)
        self.observations_corrupted = 0
        self.scoring_faults = 0
        self.worker_faults_planned = 0
        self.action_faults_planned = 0
        self.gateway_faults_planned = 0

    # ------------------------------------------------------------------
    # Observation faults
    # ------------------------------------------------------------------
    def corrupt(self, observation: np.ndarray) -> Optional[np.ndarray]:
        """Maybe corrupt one observation; ``None`` models a dropped sample."""
        if self._rng.random() >= self.corrupt_prob:
            return observation
        self.observations_corrupted += 1
        kind = self.kinds[self._rng.integers(len(self.kinds))]
        if kind == "drop":
            return None
        observation = np.asarray(observation, dtype=float).reshape(-1).copy()
        feature = int(self._rng.integers(observation.size))
        if kind == "nan":
            observation[feature] = np.nan
        elif kind == "inf":
            observation[feature] = np.inf if self._rng.random() < 0.5 else -np.inf
        else:  # spike
            sign = 1.0 if self._rng.random() < 0.5 else -1.0
            observation[feature] = sign * self.spike_scale * (
                1.0 + abs(observation[feature])
            )
        return observation

    # ------------------------------------------------------------------
    # Scoring faults
    # ------------------------------------------------------------------
    def before_score(self) -> Optional[str]:
        """Draw one scoring fault: ``"raise"``, ``"nan"``, or ``None``."""
        draw = self._rng.random()
        if draw < self.raise_prob:
            self.scoring_faults += 1
            return "raise"
        if draw < self.raise_prob + self.nan_score_prob:
            self.scoring_faults += 1
            return "nan"
        return None

    def wrap_detector(self, detector: AnomalyDetector) -> "FaultyDetector":
        """Wrap a fitted detector so its scoring path injects faults."""
        return FaultyDetector(detector, self)

    # ------------------------------------------------------------------
    # Worker faults (training orchestrator)
    # ------------------------------------------------------------------
    def plan_worker_faults(self, group_ids: Sequence[str],
                           fault_rate: float, epochs: int,
                           kinds: Sequence[str] = WORKER_FAULT_KINDS,
                           repeat: bool = False) -> Dict[str, WorkerFault]:
        """Draw a deterministic fault schedule for a fleet training run.

        Each group in ``group_ids`` (order matters — it is part of the
        seeded draw) is assigned a :class:`WorkerFault` with probability
        ``fault_rate``.  Fault epochs are drawn in ``[1, epochs)`` when
        possible so a checkpoint exists before the fault fires; with
        ``epochs == 1`` they land on epoch 1 / batch 0.
        """
        unknown = sorted(set(kinds) - set(WORKER_FAULT_KINDS))
        if unknown:
            raise ValueError(f"unknown worker fault kinds: {unknown}")
        if not kinds:
            raise ValueError("need at least one worker fault kind")
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        plan: Dict[str, WorkerFault] = {}
        for group_id in group_ids:
            if self._rng.random() >= fault_rate:
                continue
            kind = kinds[int(self._rng.integers(len(kinds)))]
            if kind == "nan_grad":
                # Batch-level fault: epoch in [0, epochs) (0-based loop
                # epoch), batch 0 — every group has at least one batch.
                epoch = int(self._rng.integers(epochs))
                fault = WorkerFault(kind, epoch=epoch, batch=0,
                                    repeat=repeat)
            else:
                # Epoch-boundary fault: fires after `epoch` completed
                # epochs, i.e. in [1, epochs].
                epoch = 1 + int(self._rng.integers(epochs))
                fault = WorkerFault(kind, epoch=epoch, repeat=repeat)
            plan[group_id] = fault
            self.worker_faults_planned += 1
        return plan

    # ------------------------------------------------------------------
    # Action faults (closed-loop remediation)
    # ------------------------------------------------------------------
    def plan_action_faults(self, service_ids: Sequence[str],
                           fault_rate: float,
                           kinds: Sequence[str] = ACTION_FAULT_KINDS,
                           relapse_ticks: int = 8,
                           repeat: bool = False) -> Dict[str, "ActionFault"]:
        """Draw a deterministic remediation-fault schedule for a drill.

        The mirror of :meth:`plan_worker_faults` for the remediation
        path: each service in ``service_ids`` (order matters — it is part
        of the seeded draw) is assigned an :class:`ActionFault` with
        probability ``fault_rate``.  The drill harness hands the plan to
        the :class:`~repro.runtime.remediation.actions.ActionRunner`
        (``action_fail`` / ``action_hang``) and applies
        ``recovery_relapse`` itself during the verification dwell.
        """
        unknown = sorted(set(kinds) - set(ACTION_FAULT_KINDS))
        if unknown:
            raise ValueError(f"unknown action fault kinds: {unknown}")
        if not kinds:
            raise ValueError("need at least one action fault kind")
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        plan: Dict[str, ActionFault] = {}
        for service_id in service_ids:
            if self._rng.random() >= fault_rate:
                continue
            kind = kinds[int(self._rng.integers(len(kinds)))]
            plan[service_id] = ActionFault(kind, relapse_ticks=relapse_ticks,
                                           repeat=repeat)
            self.action_faults_planned += 1
        return plan

    # ------------------------------------------------------------------
    # Gateway faults (serving gateway delivery path)
    # ------------------------------------------------------------------
    def plan_gateway_faults(self, service_ids: Sequence[str],
                            fault_rate: float, updates: int,
                            kinds: Sequence[str] = GATEWAY_FAULT_KINDS,
                            delay_updates: int = 2,
                            delay_seconds: float = 0.2,
                            repeat: bool = False) -> Dict[str, "GatewayFault"]:
        """Draw a deterministic delivery-fault schedule for a traffic run.

        The mirror of :meth:`plan_worker_faults` for the gateway's ack
        protocol: each service in ``service_ids`` (order matters — it is
        part of the seeded draw) is assigned a :class:`GatewayFault` with
        probability ``fault_rate``, firing at an update index drawn in
        ``[1, updates]``.  The traffic generator executes delivery faults
        client-side; ``worker_slow_start`` is handed to the gateway's
        worker spawn path.
        """
        unknown = sorted(set(kinds) - set(GATEWAY_FAULT_KINDS))
        if unknown:
            raise ValueError(f"unknown gateway fault kinds: {unknown}")
        if not kinds:
            raise ValueError("need at least one gateway fault kind")
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if updates < 1:
            raise ValueError("updates must be >= 1")
        plan: Dict[str, GatewayFault] = {}
        for service_id in service_ids:
            if self._rng.random() >= fault_rate:
                continue
            kind = kinds[int(self._rng.integers(len(kinds)))]
            at_update = 1 + int(self._rng.integers(updates))
            plan[service_id] = GatewayFault(
                kind, at_update=at_update, delay_updates=delay_updates,
                delay_seconds=delay_seconds, repeat=repeat,
            )
            self.gateway_faults_planned += 1
        return plan

    # ------------------------------------------------------------------
    # Storage faults
    # ------------------------------------------------------------------
    def truncate_file(self, path: str | Path,
                      keep_fraction: float = 0.5) -> Path:
        """Chop the tail off a file in place (crash-mid-write simulation)."""
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        path = Path(path)
        size = path.stat().st_size
        keep = int(size * keep_fraction)
        with open(path, "rb+") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        return path


class FaultyDetector(AnomalyDetector):
    """Proxy that injects faults into another detector's scoring path.

    Besides the injector's random per-call faults, ``fail_services`` is a
    mutable set of service ids whose scoring *always* raises, and
    ``nan_services`` one whose scoring always returns NaN at the newest
    timestamp — the knobs for scripting sustained outages and sustained
    silent corruption (down for steps 100..260, say) on top of the random
    transient faults.
    """

    def __init__(self, inner: AnomalyDetector, injector: FaultInjector):
        self.inner = inner
        self.injector = injector
        self.name = f"faulty({inner.name})"
        self.fail_services: set = set()
        self.nan_services: set = set()

    def fit(self, service_ids, train_series) -> "FaultyDetector":
        self.inner.fit(service_ids, train_series)
        return self

    def prepare_service(self, service_id: str, train_series) -> None:
        self.inner.prepare_service(service_id, train_series)

    def score(self, service_id: str, series: np.ndarray) -> np.ndarray:
        if service_id in self.fail_services:
            self.injector.scoring_faults += 1
            raise InjectedFault(
                f"injected outage for service {service_id!r}"
            )
        fault = self.injector.before_score()
        if fault == "raise":
            raise InjectedFault(
                f"injected scoring fault for service {service_id!r}"
            )
        scores = self.inner.score(service_id, series)
        if fault == "nan" or service_id in self.nan_services:
            if service_id in self.nan_services:
                self.injector.scoring_faults += 1
            scores = np.asarray(scores, dtype=float).copy()
            scores[-1] = np.nan
        return scores
