"""Trainer and detector end-to-end behaviour."""

import numpy as np
import pytest

from repro.core import MaceConfig, MaceDetector, MaceTrainer, timeline_scores


def _fast_config(**overrides):
    # window 40 matches the dataset profiles (pattern periods are drawn to
    # be resolvable at that window length).
    defaults = dict(window=40, num_bases=6, channels=4, epochs=2,
                    train_stride=8, gamma_time=5, gamma_freq=5,
                    kernel_freq=4, kernel_time=3)
    defaults.update(overrides)
    return MaceConfig(**defaults)


class TestTrainer:
    def test_fit_records_history(self, tiny_dataset):
        trainer = MaceTrainer(_fast_config())
        trainer.fit([s.service_id for s in tiny_dataset],
                    [s.train for s in tiny_dataset])
        assert len(trainer.history.epoch_losses) == 2
        assert np.isfinite(trainer.history.final_loss)

    def test_loss_decreases(self, tiny_dataset):
        trainer = MaceTrainer(_fast_config(epochs=5))
        trainer.fit([s.service_id for s in tiny_dataset],
                    [s.train for s in tiny_dataset])
        losses = trainer.history.epoch_losses
        assert losses[-1] < losses[0]

    def test_mismatched_inputs_rejected(self, tiny_dataset):
        trainer = MaceTrainer(_fast_config())
        with pytest.raises(ValueError):
            trainer.fit(["one"], [s.train for s in tiny_dataset])

    def test_window_errors_requires_known_service(self, tiny_dataset):
        trainer = MaceTrainer(_fast_config())
        trainer.fit([tiny_dataset[0].service_id], [tiny_dataset[0].train])
        with pytest.raises(KeyError):
            trainer.window_errors("unknown", np.zeros((2, 40, 8)))

    def test_prepare_service_enables_unseen_scoring(self, tiny_dataset):
        trainer = MaceTrainer(_fast_config())
        trainer.fit([tiny_dataset[0].service_id], [tiny_dataset[0].train])
        unseen = tiny_dataset[1]
        trainer.prepare_service(unseen.service_id, unseen.train)
        windows = np.stack([unseen.test[i:i + 40] for i in range(4)])
        errors = trainer.window_errors(unseen.service_id, windows)
        assert errors.shape == (4, 40)


class TestDetector:
    def test_fit_score_roundtrip(self, tiny_dataset):
        detector = MaceDetector(_fast_config())
        detector.fit([s.service_id for s in tiny_dataset],
                     [s.train for s in tiny_dataset])
        service = tiny_dataset[0]
        scores = detector.score(service.service_id, service.test)
        assert scores.shape == (len(service.test),)
        assert np.all(scores >= 0)

    def test_scores_separate_obvious_anomalies(self, rng):
        """Deterministic case: clean periodic train, spiky + frequency-swapped
        test.  MACE must score the anomalous spans above the normal floor."""
        t = np.arange(1024)
        train = np.stack([np.sin(2 * np.pi * t / 10),
                          np.cos(2 * np.pi * t / 20)], axis=1)
        train += 0.05 * rng.normal(size=train.shape)
        test = train.copy()
        labels = np.zeros(1024, dtype=bool)
        test[200:204] += 5.0                      # strong spikes
        labels[200:204] = True
        swap = np.sin(2 * np.pi * np.arange(64) / 4.0)  # foreign frequency
        test[600:664, 0] = swap
        labels[600:664] = True
        detector = MaceDetector(_fast_config(epochs=5))
        detector.fit(["svc"], [train])
        scores = detector.score("svc", test)
        assert scores[labels].mean() > 1.5 * scores[~labels].mean()

    def test_unfitted_raises(self, tiny_dataset):
        detector = MaceDetector(_fast_config())
        with pytest.raises(RuntimeError):
            detector.score("svc", tiny_dataset[0].test)
        with pytest.raises(RuntimeError):
            detector.num_parameters()

    def test_num_parameters_positive(self, tiny_dataset):
        detector = MaceDetector(_fast_config())
        detector.fit([tiny_dataset[0].service_id], [tiny_dataset[0].train])
        assert detector.num_parameters() > 0

    def test_default_config(self):
        assert MaceDetector().config.window == 40


class TestTimelineScores:
    def test_validates_error_shape(self, rng):
        series = rng.normal(size=(50, 2))
        with pytest.raises(ValueError):
            timeline_scores(lambda w: np.zeros((w.shape[0], 3)), series, 10)

    def test_univariate_supported(self, rng):
        series = rng.normal(size=60)
        scores = timeline_scores(
            lambda w: np.abs(w).mean(axis=-1), series, 10,
        )
        assert scores.shape == (60,)
