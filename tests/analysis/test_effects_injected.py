"""Injected nondeterminism bugs: the effect analyzer catches what the
lint, the contract checker, and the graph dataflow analyzer cannot.

Four seeded bug classes, each written the way the mistake actually
appears in review (PR-3 pattern — the bug is injected into a synthetic
package, and the test proves (a) the effect analyzer reports it with the
right rule and a correct provenance chain, and (b) the AST lint passes
the same source clean, because the bug lives in dataflow the lint's
pattern matching cannot see):

1. global RNG in a scorer, hidden behind ``from numpy.random import``
2. ``time.time()`` leaking into a checkpoint payload
3. unsorted ``glob`` feeding dataset loading order
4. a float reduction folded in set iteration order
"""

from repro.analysis.effects import analyze_package
from repro.analysis.lint import lint_source
from repro.analysis.purity import check_roots


def make_pkg(tmp_path, files):
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return analyze_package(root=root)


class TestGlobalRngInScorer:
    SOURCE = (
        "import numpy as np\n"
        "from numpy.random import rand\n"
        "\n"
        "__all__ = ['Scorer']\n"
        "\n"
        "\n"
        "class Scorer:\n"
        "    def _perturb(self, windows):\n"
        "        return windows + 1e-6 * rand(*windows.shape)\n"
        "\n"
        "    def score(self, windows):\n"
        "        return np.abs(self._perturb(windows)).mean(axis=-1)\n"
    )

    def test_analyzer_catches_with_provenance(self, tmp_path):
        model = make_pkg(tmp_path, {"scorer.py": self.SOURCE})
        findings = check_roots(model, roots=("pkg.scorer.Scorer.score",))
        rng = [f for f in findings if f.rule == "DET501"]
        assert len(rng) == 1
        assert rng[0].severity == "error"
        assert "Scorer.score -> _perturb" in rng[0].message
        assert "np.random.rand" in rng[0].message

    def test_lint_misses_the_aliased_import(self):
        # REP101/REP112 key on the np.random./random. attribute shape;
        # `from numpy.random import rand` leaves no such attribute
        codes = {v.code for v in lint_source(self.SOURCE, "src/mod.py")}
        assert "REP101" not in codes
        assert "REP112" not in codes


class TestWallClockInCheckpointPayload:
    SOURCE = (
        "import time\n"
        "\n"
        "__all__ = ['save_checkpoint']\n"
        "\n"
        "\n"
        "def _payload(step, state):\n"
        "    return {'step': step, 'state': state,\n"
        "            'saved_at': time.time()}\n"
        "\n"
        "\n"
        "def save_checkpoint(step, state):\n"
        "    return _payload(step, state)\n"
    )

    def test_analyzer_catches_with_provenance(self, tmp_path):
        model = make_pkg(tmp_path, {"ckpt.py": self.SOURCE})
        findings = check_roots(model,
                               roots=("pkg.ckpt.save_checkpoint",))
        clock = [f for f in findings if f.rule == "DET502"]
        assert len(clock) == 1
        assert "save_checkpoint -> _payload reads time.time" in \
            clock[0].message

    def test_lint_has_no_wall_clock_rule(self):
        codes = {v.code for v in lint_source(self.SOURCE, "src/mod.py")}
        assert not codes & {"REP101", "REP112"}


class TestUnsortedGlobInLoader:
    SOURCE = (
        "import glob\n"
        "import os\n"
        "\n"
        "__all__ = ['load_services']\n"
        "\n"
        "\n"
        "def _service_files(root):\n"
        "    return glob.glob(os.path.join(root, '*.csv'))\n"
        "\n"
        "\n"
        "def load_services(root):\n"
        "    return [name for name in _service_files(root)]\n"
    )

    def test_analyzer_catches_with_provenance(self, tmp_path):
        model = make_pkg(tmp_path, {"loader.py": self.SOURCE})
        findings = check_roots(model, roots=("pkg.loader.load_services",))
        order = [f for f in findings if f.rule == "DET503"]
        assert len(order) == 1
        assert order[0].severity == "error"
        assert "load_services -> _service_files" in order[0].message
        # the sorted() discipline fixes it
        fixed = self.SOURCE.replace(
            "return glob.glob", "return sorted(glob.glob")
        fixed = fixed.replace("'*.csv'))", "'*.csv')))")
        model = make_pkg(tmp_path, {"loader.py": fixed})
        findings = check_roots(model, roots=("pkg.loader.load_services",))
        assert [f for f in findings if f.rule == "DET503"] == []

    def test_lint_misses_listing_order(self):
        assert not {v.code for v in
                    lint_source(self.SOURCE, "src/mod.py")}


class TestSetOrderedFloatReduction:
    SOURCE = (
        "__all__ = ['aggregate_scores']\n"
        "\n"
        "\n"
        "def _dedupe(scores):\n"
        "    pool = set(scores)\n"
        "    return sum(pool)\n"
        "\n"
        "\n"
        "def aggregate_scores(scores):\n"
        "    return _dedupe(scores) / max(len(scores), 1)\n"
    )

    def test_analyzer_catches_with_provenance(self, tmp_path):
        # float addition is not associative: folding a set in hash
        # order makes the total depend on PYTHONHASHSEED
        model = make_pkg(tmp_path, {"agg.py": self.SOURCE})
        findings = check_roots(model, roots=("pkg.agg.aggregate_scores",))
        iteration = [f for f in findings if f.rule == "DET504"]
        assert len(iteration) == 1
        assert iteration[0].severity == "error"
        assert "aggregate_scores -> _dedupe" in iteration[0].message
        assert "sum() over a set" in iteration[0].message

    def test_lint_misses_set_iteration(self):
        assert not {v.code for v in
                    lint_source(self.SOURCE, "src/mod.py")}
