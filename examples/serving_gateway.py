"""Durable serving gateway: loss-free failover under a mid-traffic kill.

``fault_tolerant_serving.py`` hardens one process's scoring loop; this
script puts the durable front door from ``repro.runtime.gateway`` in
front of a fleet of scoring *worker processes*.  Every accepted update
is journalled to a crash-safe write-ahead log before it is acknowledged,
so when a worker is hard-killed mid-traffic — after applying an update
but before acking it — the gateway respawns it, restores its snapshot,
replays the WAL suffix, and nothing acknowledged is lost.

The run drives seeded traffic (every service carrying a delivery fault)
through a two-worker gateway, kills the worker owning ``svc-0`` partway
through, and then proves durability two ways: the per-service final
sequence numbers, and the observability report rendered purely from the
JSONL the gateway left behind.

Run:  python examples/serving_gateway.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.eval import format_table
from repro.obs.report import render_report
from repro.runtime import FaultInjector, GatewayConfig, ServingGateway
from repro.runtime.gateway import (
    TrafficConfig,
    ZScoreDetector,
    make_fleet_series,
    run_traffic,
)

NUM_SERVICES = 6
WORKERS = 2
HISTORY = 96
UPDATES = 30


def main() -> None:
    # Synthetic fleet: HISTORY points calibrate each service, the rest
    # stream through the gateway as sequenced updates.
    fleet = make_fleet_series(NUM_SERVICES, HISTORY, UPDATES, seed=0)
    histories = {sid: series[:HISTORY] for sid, series in fleet.items()}
    streams = {sid: series[HISTORY:] for sid, series in fleet.items()}
    detector = ZScoreDetector().fit(
        sorted(histories), [histories[sid] for sid in sorted(histories)])

    # Seeded chaos: a delivery fault on every service (duplicates,
    # reordering, worker slow-starts) plus one worker hard-killed after
    # it has applied 15 updates for svc-0 — inside the applied-but-
    # unacked window the WAL exists to cover.
    injector = FaultInjector(seed=0)
    plan = injector.plan_gateway_faults(sorted(histories), fault_rate=1.0,
                                        updates=UPDATES)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        gateway = ServingGateway(
            directory, detector, histories,
            GatewayConfig(workers=WORKERS, window=16, seed=0,
                          queue_depth=512, backoff_base=0.01))
        gateway.apply_fault_plan(plan)
        gateway.schedule_worker_kill("svc-0", after_applies=15)

        async def session():
            await gateway.start()
            report = await run_traffic(gateway, streams, TrafficConfig(),
                                       faults=plan)
            await gateway.drain()
            return report, gateway.status()

        report, status = asyncio.run(session())

        print(format_table(("metric", "value"), report.summary_rows(),
                           title=f"gateway session: {NUM_SERVICES} services "
                                 f"over {WORKERS} workers, worker kill "
                                 f"mid-traffic"))
        print()
        rows = [(shard_id, shard["services"], shard["wal_lsn"],
                 shard["respawns"])
                for shard_id, shard in sorted(status["shards"].items())]
        print(format_table(("shard", "services", "wal records", "respawns"),
                           rows, title="shards after drain"))
        print()

        total = NUM_SERVICES * UPDATES
        delivered = sum(report.final_sequence.values())
        print(f"acknowledged: {report.accepted}/{total}   "
              f"applied after failover: {delivered}/{total}   "
              f"lost: {total - delivered}")
        print()

        # The same story, reconstructed from events.jsonl/metrics.jsonl
        # alone — what an operator who wasn't watching would read.
        print(render_report(directory))


if __name__ == "__main__":
    main()
