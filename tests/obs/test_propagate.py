"""repro.obs.propagate: deterministic contexts, wire codec, span logs."""

import json

import pytest

from repro.obs.propagate import (
    WIRE_SCHEMA,
    TraceContext,
    TraceLog,
    build_trace_tree,
    read_trace_spans,
    render_trace_tree,
    spans_by_trace,
)


class TestTraceContext:
    def test_mint_is_deterministic(self):
        a = TraceContext.mint(0, "svc-3", 17)
        b = TraceContext.mint(0, "svc-3", 17)
        assert a == b
        assert len(a.trace_id) == 16 and len(a.span_id) == 12
        int(a.trace_id, 16)  # valid hex

    def test_distinct_inputs_distinct_traces(self):
        ids = {TraceContext.mint(seed, sid, seq).trace_id
               for seed in (0, 1) for sid in ("svc-0", "svc-1")
               for seq in (1, 2, 3)}
        assert len(ids) == 12

    def test_sampling_decision_is_deterministic_and_inherited(self):
        always = TraceContext.mint(0, "svc-0", 1, sample_rate=1.0)
        never = TraceContext.mint(0, "svc-0", 1, sample_rate=0.0)
        assert always.sampled and not never.sampled
        assert always.trace_id == never.trace_id
        assert always.child("worker.update").sampled
        assert not never.child("worker.update").sampled

    def test_sample_rate_roughly_respected(self):
        sampled = sum(TraceContext.mint(0, "svc-0", seq,
                                        sample_rate=0.25).sampled
                      for seq in range(1, 401))
        assert 60 <= sampled <= 140  # ~100 expected; digests, not dice

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            TraceContext.mint(0, "svc-0", 1, sample_rate=1.5)

    def test_child_keeps_trace_changes_span(self):
        root = TraceContext.mint(0, "svc-0", 1)
        child = root.child("worker.update", qualifier="0:1")
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        # Same derivation, same id (replay re-derives); different
        # qualifier (another incarnation), different id.
        assert child == root.child("worker.update", qualifier="0:1")
        assert child != root.child("worker.update", qualifier="1:1")

    def test_wire_round_trip(self):
        context = TraceContext.mint(0, "svc-0", 9)
        wire = context.to_wire()
        assert wire["schema"] == WIRE_SCHEMA
        assert TraceContext.from_wire(wire) == context
        assert TraceContext.from_wire(json.loads(json.dumps(wire))) == context

    @pytest.mark.parametrize("wire", [
        None, "x", 7, [], {},                          # absent / foreign
        {"schema": 99, "trace_id": "a", "span_id": "b"},  # future schema
        {"schema": WIRE_SCHEMA, "trace_id": None, "span_id": "b"},
        {"schema": WIRE_SCHEMA, "trace_id": "a"},      # torn shape
    ])
    def test_from_wire_tolerates_bad_shapes(self, wire):
        assert TraceContext.from_wire(wire) is None


class TestTraceLog:
    def test_record_read_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        context = TraceContext.mint(0, "svc-0", 1)
        with TraceLog(path) as log:
            log.record("gateway.submit", context, 0.002,
                       service="svc-0", sequence=1)
            child = context.child("worker.update")
            log.record("worker.update", child, 0.001,
                       parent_span_id=context.span_id, depth=1)
        spans = list(read_trace_spans(path))
        assert [s["name"] for s in spans] == ["gateway.submit",
                                              "worker.update"]
        assert spans[1]["parent_span_id"] == spans[0]["span_id"]
        assert spans[0]["trace_id"] == spans[1]["trace_id"]

    def test_append_mode_survives_reopen(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        context = TraceContext.mint(0, "svc-0", 1)
        for _ in range(2):  # two incarnations, one file
            with TraceLog(path) as log:
                log.record("worker.update", context, 0.001)
        assert len(list(read_trace_spans(path))) == 2

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        context = TraceContext.mint(0, "svc-0", 1)
        with TraceLog(path) as log:
            log.record("gateway.submit", context, 0.002)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "worker.update", "tr')  # kill mid-write
        spans = list(read_trace_spans(path))
        assert [s["name"] for s in spans] == ["gateway.submit"]

    def test_non_jsonable_attrs_coerced(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        context = TraceContext.mint(0, "svc-0", 1)
        with TraceLog(path) as log:
            span = log.record("gateway.submit", context, 0.0,
                              where=tmp_path)
        assert span["attrs"]["where"] == str(tmp_path)
        assert list(read_trace_spans(path))  # round-trips


class TestTreeAssembly:
    def _spans(self):
        root = TraceContext.mint(0, "svc-0", 1)
        first = root.child("worker.update", qualifier="0:1")
        second = root.child("worker.update", qualifier="1:1")
        other = TraceContext.mint(0, "svc-1", 1)
        return root, [
            {"name": "gateway.submit", "trace_id": root.trace_id,
             "span_id": root.span_id, "seconds": 0.002},
            {"name": "worker.update", "trace_id": root.trace_id,
             "span_id": first.span_id, "parent_span_id": root.span_id,
             "seconds": 0.001, "attrs": {"replay": False}},
            {"name": "worker.update", "trace_id": root.trace_id,
             "span_id": second.span_id, "parent_span_id": root.span_id,
             "seconds": 0.001, "attrs": {"replay": True}},
            {"name": "gateway.submit", "trace_id": other.trace_id,
             "span_id": other.span_id, "seconds": 0.003},
        ]

    def test_build_trace_tree_links_parents(self):
        root, spans = self._spans()
        trees = build_trace_tree(spans, root.trace_id)
        assert len(trees) == 1
        assert trees[0]["span"]["name"] == "gateway.submit"
        assert len(trees[0]["children"]) == 2

    def test_orphan_spans_become_roots(self):
        root, spans = self._spans()
        orphans = build_trace_tree(spans[1:], root.trace_id)
        assert len(orphans) == 2  # parent torn away: children surface

    def test_render_trace_tree(self):
        root, spans = self._spans()
        text = render_trace_tree(spans, root.trace_id)
        assert text.splitlines()[0] == f"  trace {root.trace_id}"
        assert "- gateway.submit 2.000 ms" in text
        assert "[replay=True]" in text
        assert render_trace_tree([], "feedbeef").endswith(
            "no spans recorded")

    def test_spans_by_trace_groups_and_drops_untraced(self):
        root, spans = self._spans()
        grouped = spans_by_trace(spans + [{"name": "loose"}])
        assert set(grouped) == {root.trace_id,
                                spans[-1]["trace_id"]}
        assert len(grouped[root.trace_id]) == 3
