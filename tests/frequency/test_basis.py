"""Fourier basis matrices: exactness, projections, validation."""

import numpy as np
import pytest

from repro.frequency import (
    FourierBasis,
    fourier_forward_matrix,
    fourier_inverse_matrix,
    num_rfft_bins,
    rfft_bin_frequencies,
)


class TestBinHelpers:
    @pytest.mark.parametrize("window,expected", [(2, 2), (8, 5), (40, 21), (41, 21)])
    def test_num_rfft_bins(self, window, expected):
        assert num_rfft_bins(window) == expected

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            num_rfft_bins(1)

    def test_bin_frequencies(self):
        freqs = rfft_bin_frequencies(8)
        np.testing.assert_allclose(freqs, np.arange(5) / 8)


class TestForwardMatrix:
    def test_matches_numpy_rfft(self, rng):
        window = 16
        x = rng.normal(size=window)
        matrix = fourier_forward_matrix(window, range(num_rfft_bins(window)))
        coeffs = matrix @ x
        reference = np.fft.rfft(x)
        np.testing.assert_allclose(coeffs[0::2], reference.real, atol=1e-10)
        np.testing.assert_allclose(coeffs[1::2], reference.imag, atol=1e-10)

    def test_subset_rows_match_full(self, rng):
        window = 12
        x = rng.normal(size=window)
        subset = fourier_forward_matrix(window, [1, 4])
        reference = np.fft.rfft(x)
        coeffs = subset @ x
        np.testing.assert_allclose(coeffs[0], reference[1].real, atol=1e-10)
        np.testing.assert_allclose(coeffs[3], reference[4].imag, atol=1e-10)

    def test_index_validation(self):
        with pytest.raises(ValueError):
            fourier_forward_matrix(8, [5])  # only 5 bins: 0..4
        with pytest.raises(ValueError):
            fourier_forward_matrix(8, [-1])
        with pytest.raises(ValueError):
            fourier_forward_matrix(8, [])


class TestFourierBasis:
    def test_full_basis_is_identity(self, rng):
        for window in (8, 9, 40):
            basis = FourierBasis.full(window)
            x = rng.normal(size=(5, window))
            np.testing.assert_allclose(basis.reconstruct(basis.project(x)), x,
                                       atol=1e-10)

    def test_projection_is_idempotent(self, rng):
        basis = FourierBasis(16, [0, 2, 5])
        x = rng.normal(size=16)
        once = basis.reconstruct(basis.project(x))
        twice = basis.reconstruct(basis.project(once))
        np.testing.assert_allclose(once, twice, atol=1e-10)

    def test_pure_tone_in_subset_is_exact(self):
        window = 20
        t = np.arange(window)
        x = 2.0 * np.sin(2 * np.pi * 3 * t / window + 0.4)
        basis = FourierBasis(window, [3])
        np.testing.assert_allclose(basis.reconstruct(basis.project(x)), x,
                                   atol=1e-10)

    def test_pure_tone_outside_subset_is_killed(self):
        window = 20
        t = np.arange(window)
        x = np.sin(2 * np.pi * 3 * t / window)
        basis = FourierBasis(window, [5])
        np.testing.assert_allclose(basis.reconstruct(basis.project(x)), 0.0,
                                   atol=1e-10)

    def test_amplitudes(self):
        window = 16
        t = np.arange(window)
        x = 3.0 * np.cos(2 * np.pi * 2 * t / window)
        basis = FourierBasis(window, [2])
        amplitude = basis.amplitudes(basis.project(x))
        np.testing.assert_allclose(amplitude, [3.0 * window / 2], atol=1e-9)

    def test_indices_deduplicated_and_sorted(self):
        basis = FourierBasis(16, [5, 1, 5, 3])
        np.testing.assert_array_equal(basis.indices, [1, 3, 5])
        assert basis.k == 3

    def test_frequencies_property(self):
        basis = FourierBasis(10, [0, 2])
        np.testing.assert_allclose(basis.frequencies, [0.0, 0.2])

    def test_serialization_roundtrip(self):
        basis = FourierBasis(16, [1, 4, 7])
        clone = FourierBasis.from_dict(basis.to_dict())
        np.testing.assert_array_equal(clone.indices, basis.indices)
        assert clone.window == basis.window

    def test_shape_validation(self, rng):
        basis = FourierBasis(16, [1])
        with pytest.raises(ValueError):
            basis.project(rng.normal(size=8))
        with pytest.raises(ValueError):
            basis.reconstruct(rng.normal(size=3))

    def test_nyquist_handling_even_window(self, rng):
        window = 8
        basis = FourierBasis(window, [0, 4])  # DC + Nyquist
        x = rng.normal(size=window)
        # Projection onto DC+Nyquist: mean + alternating component
        projected = basis.reconstruct(basis.project(x))
        alternating = ((-1.0) ** np.arange(window))
        expected = x.mean() + (x * alternating).mean() * alternating
        np.testing.assert_allclose(projected, expected, atol=1e-10)
