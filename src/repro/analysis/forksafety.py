"""Fork-safety pass (FS601-FS603) for the multiprocessing layers.

The fleet orchestrator forks workers (``start_method`` defaults to
``fork`` where available), which copies the parent's module-global state
into every child.  Three failure classes are checked over the
:class:`~repro.analysis.effects.RepoModel`:

``FS601`` (warn) — *mutable module global reachable from a worker*.
    A worker-reachable function reads a module global that some function
    rebinds via a ``global`` statement (a swap point, e.g. the
    observability sinks ``_LOG`` / ``_TRACER`` / ``_REGISTRY``).  Under
    fork the child inherits whatever the parent had installed at fork
    time; under spawn it silently gets the module default.  Legitimate
    swap points (workers install their own sinks on entry) are audited
    with ``# effects: ok FORK_GLOBAL reason=...`` on the reading line.

``FS602`` (error) — *non-atomic result write*.
    A worker-reachable function (or any function in a module importing
    ``multiprocessing``) opens a file for writing (``open(.., "w")``,
    ``Path.write_text`` / ``write_bytes``) without the
    write-temp-then-rename discipline (calling ``atomic_replace`` /
    ``os.replace`` / ``os.rename`` in the same function).  The parent
    polls for result files, so a torn write is indistinguishable from a
    crashed worker.  Append-mode opens are exempt (the event log is an
    append-only journal by design).

``FS603`` (error) — *unjoined process or unclosed queue*.
    A function constructs a ``Process`` and calls ``.start()`` but never
    joins/terminates it, and the handle does not escape the function
    (not returned, yielded, stored on an object, put in a container, or
    passed to a call) — a zombie child nobody can ever reap.  Same for
    a locally constructed multiprocessing ``Queue`` that is neither
    closed nor escaping.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import Finding
from repro.analysis.effects import (FunctionInfo, RepoModel, _dotted,
                                    _walk_function, analyze_package)

__all__ = ["FS_RULES", "check_fork_safety", "worker_targets",
           "worker_reachable"]

FS_RULES: Dict[str, Tuple[str, str]] = {
    "FS601": ("warn", "fork-shared-global"),
    "FS602": ("error", "non-atomic-write"),
    "FS603": ("error", "process-lifecycle-leak"),
}

_ATOMIC_CALLS = frozenset({"atomic_replace", "replace", "rename"})
_WRITE_MODES = frozenset({"w", "wb", "w+", "wb+", "x", "xb"})
_PROC_FACTORIES = frozenset({"Process"})
_QUEUE_FACTORIES = frozenset({"Queue", "SimpleQueue", "JoinableQueue"})
_REAP_METHODS = frozenset({"join", "terminate", "kill", "close"})


def worker_targets(model: RepoModel) -> List[str]:
    """Functions handed to child processes (``Process(target=...)`` and
    ``submit``/``apply_async`` first arguments)."""
    targets: Set[str] = set()
    for function in model.functions.values():
        module = model.modules[function.module]
        for node in _walk_function(function.node):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            candidate: Optional[ast.expr] = None
            if name in _PROC_FACTORIES:
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        candidate = keyword.value
            elif name in ("submit", "apply_async") and node.args:
                candidate = node.args[0]
            if not isinstance(candidate, ast.Name):
                continue
            resolved = f"{function.module}.{candidate.id}"
            if resolved in model.functions:
                targets.add(resolved)
    return sorted(targets)


def worker_reachable(model: RepoModel) -> Dict[str, str]:
    """``qname -> worker target`` for every function a child can reach."""
    reached: Dict[str, str] = {}
    for target in worker_targets(model):
        order, _ = model.reachable(target)
        for qname in order:
            reached.setdefault(qname, target)
    return reached


def _swap_point_globals(model: RepoModel, module_qname: str) -> Set[str]:
    """Module globals rebound via a ``global`` statement in any function."""
    module = model.modules[module_qname]
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Global):
            names.update(node.names)
    # only names that actually exist as module globals
    return {n for n in names if n in module.global_exprs}


def _annotation_for(model: RepoModel, module_qname: str, line: int,
                    atom: str):
    annotation = model.modules[module_qname].annotations.get(line)
    if annotation is not None and not annotation.malformed \
            and annotation.atom == atom:
        annotation.consumed = True
        return annotation
    return None


def _finding(code: str, function: FunctionInfo, line: int, message: str,
             op: str, annotation=None) -> Finding:
    severity, name = FS_RULES[code]
    if annotation is not None:
        message += f" [audited: {annotation.reason}]"
    return Finding(
        rule=code, severity=severity, message=message, op=op,
        node_index=-1, module_path=function.qname, file=function.file,
        line=line, model="forksafety", suppressed=annotation is not None,
        frames=((function.file, line, message),), rule_name=name)


def _check_shared_globals(model: RepoModel,
                          reached: Dict[str, str],
                          out: List[Finding]) -> None:
    swap_cache: Dict[str, Set[str]] = {}
    for qname, target in sorted(reached.items()):
        function = model.functions[qname]
        swaps = swap_cache.get(function.module)
        if swaps is None:
            swaps = _swap_point_globals(model, function.module)
            swap_cache[function.module] = swaps
        if not swaps:
            continue
        local_names = _assigned_names(function)
        seen: Set[str] = set()
        for node in _walk_function(function.node):
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in swaps
                    and node.id not in local_names
                    and node.id not in seen):
                continue
            seen.add(node.id)
            annotation = _annotation_for(
                model, function.module, node.lineno, "FORK_GLOBAL")
            short = qname.split(".")[-1]
            out.append(_finding(
                "FS601", function, node.lineno,
                f"{short} reads swap-point global {node.id} "
                f"(worker-reachable via {target.split('.')[-1]}); "
                "fork inherits the parent's instance",
                op=node.id, annotation=annotation))


def _assigned_names(function: FunctionInfo) -> Set[str]:
    names: Set[str] = set()
    node = function.node
    args = node.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    globals_: Set[str] = set()
    for stmt in _walk_function(node):
        if isinstance(stmt, ast.Global):
            globals_.update(stmt.names)
        for target in _assign_targets(stmt):
            names.add(target)
    return names - globals_


def _assign_targets(stmt: ast.AST):
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [i.optional_vars for i in stmt.items
                   if i.optional_vars is not None]
    elif isinstance(stmt, ast.comprehension):
        targets = [stmt.target]
    out: List[str] = []
    stack = list(targets)
    while stack:
        node = stack.pop(0)
        if isinstance(node, ast.Name):
            out.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
    return out


def _mp_modules(model: RepoModel) -> Set[str]:
    out: Set[str] = set()
    for qname, module in model.modules.items():
        for target in module.imports.values():
            if target == "multiprocessing" \
                    or target.startswith("multiprocessing."):
                out.add(qname)
    return out


def _check_atomic_writes(model: RepoModel, reached: Dict[str, str],
                         out: List[Finding]) -> None:
    mp_modules = _mp_modules(model)
    for qname in sorted(model.functions):
        function = model.functions[qname]
        if qname not in reached and function.module not in mp_modules:
            continue
        writes: List[Tuple[int, str]] = []
        atomic = False
        for node in _walk_function(function.node):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                mode = _open_mode(node)
                if mode in _WRITE_MODES:
                    writes.append((node.lineno, f'open(.., "{mode}")'))
            elif isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in ("write_text", "write_bytes"):
                    writes.append((node.lineno, f".{attr}(..)"))
                elif attr == "open":
                    mode = _open_mode(node)
                    if mode in _WRITE_MODES:
                        writes.append(
                            (node.lineno, f'.open("{mode}")'))
                if attr in _ATOMIC_CALLS:
                    atomic = True
            if isinstance(node.func, ast.Name) \
                    and node.func.id in _ATOMIC_CALLS:
                atomic = True
        if atomic:
            continue
        for line, detail in writes:
            annotation = _annotation_for(
                model, function.module, line, "ATOMIC_WRITE")
            out.append(_finding(
                "FS602", function, line,
                f"{qname.split('.')[-1]} writes via {detail} without "
                "write-temp-then-rename; a torn file is visible to "
                "concurrent readers", op="write", annotation=annotation))


def _open_mode(node: ast.Call) -> str:
    mode = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        mode = node.args[1].value
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            mode = keyword.value.value
    if not isinstance(mode, str):
        return ""
    return mode.replace("t", "").replace("+b", "b+")


def _check_process_lifecycle(model: RepoModel,
                             out: List[Finding]) -> None:
    for qname in sorted(model.functions):
        function = model.functions[qname]
        handles: Dict[str, Tuple[int, str]] = {}
        for stmt in _walk_function(function.node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)):
                continue
            call = stmt.value
            factory = None
            if isinstance(call.func, ast.Attribute):
                factory = call.func.attr
            elif isinstance(call.func, ast.Name):
                factory = call.func.id
            if factory in _PROC_FACTORIES:
                handles[stmt.targets[0].id] = (stmt.lineno, "process")
            elif factory in _QUEUE_FACTORIES:
                handles[stmt.targets[0].id] = (stmt.lineno, "queue")
        if not handles:
            continue
        started: Set[str] = set()
        reaped: Set[str] = set()
        escaped: Set[str] = set()
        for node in _walk_function(function.node):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id in handles:
                    name = node.func.value.id
                    if node.func.attr == "start":
                        started.add(name)
                    elif node.func.attr in _REAP_METHODS:
                        reaped.add(name)
                for arg in list(node.args) + [k.value for k in
                                              node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in handles:
                        escaped.add(arg.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                    and node.value is not None:
                # only the handle itself (possibly inside a container
                # literal) escapes; `return queue.get()` returns a value
                stack = [node.value]
                while stack:
                    leaf = stack.pop(0)
                    if isinstance(leaf, ast.Name) and leaf.id in handles:
                        escaped.add(leaf.id)
                    elif isinstance(leaf, (ast.Tuple, ast.List, ast.Set)):
                        stack.extend(leaf.elts)
                    elif isinstance(leaf, ast.Dict):
                        stack.extend(v for v in leaf.values
                                     if v is not None)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) \
                            and isinstance(node.value, ast.Name) \
                            and node.value.id in handles:
                        escaped.add(node.value.id)
        for name, (line, kind) in sorted(handles.items()):
            if name in escaped or name in reaped:
                continue
            if kind == "process" and name not in started:
                continue
            annotation = _annotation_for(
                model, function.module, line, "PROC_LIFECYCLE")
            noun = ("started process never joined" if kind == "process"
                    else "queue never closed")
            out.append(_finding(
                "FS603", function, line,
                f"{qname.split('.')[-1]}: local {kind} {name!r} — {noun} "
                "and the handle does not escape",
                op=name, annotation=annotation))


def check_fork_safety(model: Optional[RepoModel] = None) -> List[Finding]:
    """All FS findings for the analyzed package (audited => suppressed)."""
    if model is None:
        model = analyze_package()
    reached = worker_reachable(model)
    findings: List[Finding] = []
    _check_shared_globals(model, reached, findings)
    _check_atomic_writes(model, reached, findings)
    _check_process_lifecycle(model, findings)
    findings.sort(key=lambda f: (f.rule, f.module_path, f.op, f.file,
                                 f.line))
    return findings
