"""Shared fixtures for the runtime suite.

Fitting MACE is the slow part; the fitted detector is session-scoped and
treated as read-only by every test that scores with it.
"""

import numpy as np
import pytest

from repro.core import MaceConfig, MaceDetector
from repro.data import load_dataset


def fast_config(**overrides):
    defaults = dict(window=40, num_bases=6, channels=4, epochs=2,
                    train_stride=8, gamma_time=5, gamma_freq=5,
                    kernel_freq=4, kernel_time=3)
    defaults.update(overrides)
    return MaceConfig(**defaults)


@pytest.fixture(scope="session")
def runtime_dataset():
    return load_dataset("smd", num_services=2, train_length=256,
                        test_length=256, seed=5)


@pytest.fixture(scope="session")
def fitted_detector(runtime_dataset):
    detector = MaceDetector(fast_config())
    return detector.fit([s.service_id for s in runtime_dataset],
                        [s.train for s in runtime_dataset])


# ----------------------------------------------------------------------
# Fleet-training fixtures: many small groups, very short fits, so a test
# can afford several whole fleet runs (including retries) on one core.
# ----------------------------------------------------------------------
def fleet_config(**overrides):
    defaults = dict(window=40, num_bases=4, channels=2, epochs=3,
                    train_stride=16, gamma_time=3, gamma_freq=3,
                    kernel_freq=4, kernel_time=3, subspace_stride=8,
                    batch_size=32)
    defaults.update(overrides)
    return MaceConfig(**defaults)


def make_fleet_jobs(dataset, group_size=2):
    from repro.runtime import FleetJob

    services = list(dataset)
    jobs = []
    for index in range(0, len(services), group_size):
        group = services[index:index + group_size]
        jobs.append(FleetJob(
            f"group{index // group_size}",
            tuple(s.service_id for s in group),
            tuple(s.train for s in group),
        ))
    return jobs


@pytest.fixture(scope="session")
def fleet_dataset():
    return load_dataset("smd", num_services=6, train_length=160,
                        test_length=64, seed=11)


@pytest.fixture(scope="session")
def fleet_jobs(fleet_dataset):
    return make_fleet_jobs(fleet_dataset)
