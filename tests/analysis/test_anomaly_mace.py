"""Regression: detect_anomaly() pinpoints the faulty op inside full MACE.

The classic way this model breaks is a root of a negative intermediate: the
time-domain amplifier convolves the γ-powered (zero-mean) signal, so the
pre-root values are routinely negative, and replacing the sign-preserving
``odd_root`` with a naive ``x ** (1/γ)`` silently produces NaN.  These tests
seed exactly that bug and assert the anomaly mode names the injected op —
in the forward pass and, separately, in the backward pass.
"""

import numpy as np
import pytest

import repro.core.dualistic as dualistic
from repro.analysis import AnomalyError, detect_anomaly
from repro.core import MaceConfig, MaceModel, PatternExtractor
from repro.nn.tensor import Tensor


@pytest.fixture
def mace_setup(rng):
    config = MaceConfig()
    model = MaceModel(config, rng=np.random.default_rng(0))
    t = np.arange(400)
    series = np.stack(
        [np.sin(2 * np.pi * t / (10 + 3 * f)) for f in range(2)], axis=1
    ) + 0.05 * rng.normal(size=(400, 2))
    extractor = PatternExtractor(config.window, config.num_bases)
    extractor.fit_service("svc", series)
    windows = Tensor(rng.normal(size=(2, config.window, 2)))
    return config, model, extractor, windows


def _naive_root(x, gamma, eps=1e-8):
    """Buggy root: ``x ** (1/γ)`` — NaN for negative intermediates."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    with np.errstate(all="ignore"):
        data = x.data ** (1.0 / gamma)

    def backward(grad):
        if x.requires_grad:
            with np.errstate(all="ignore"):
                x._accumulate(grad * (1.0 / gamma)
                              * x.data ** (1.0 / gamma - 1.0))

    return Tensor._from_op(data, (x,), backward, "naive_root")


def _bad_grad_root(x, gamma, eps=1e-8):
    """Clean forward, poisoned backward: grads come out NaN."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    magnitude = np.abs(x.data)
    data = np.sign(x.data) * magnitude ** (1.0 / gamma)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(np.full_like(np.asarray(grad, dtype=float), np.nan))

    return Tensor._from_op(data, (x,), backward, "bad_grad_root")


def test_forward_nan_names_injected_op(mace_setup, monkeypatch):
    _, model, extractor, windows = mace_setup
    monkeypatch.setattr(dualistic, "odd_root", _naive_root)
    with detect_anomaly():
        with pytest.raises(AnomalyError) as excinfo:
            model(windows, extractor, "svc")
    message = str(excinfo.value)
    assert "forward of op 'naive_root'" in message
    assert "NaN" in message
    # The parent (the convolution feeding the root) was still finite.
    assert "values finite" in message


def test_backward_nan_names_injected_op(mace_setup, monkeypatch):
    _, model, extractor, windows = mace_setup
    monkeypatch.setattr(dualistic, "odd_root", _bad_grad_root)
    with detect_anomaly():
        output = model(windows, extractor, "svc")
        loss = model.loss(output)
        assert np.isfinite(loss.data).all()
        with pytest.raises(AnomalyError) as excinfo:
            loss.backward()
    assert "backward of op 'bad_grad_root'" in str(excinfo.value)


def test_healthy_mace_is_silent(mace_setup):
    _, model, extractor, windows = mace_setup
    with detect_anomaly():
        loss = model.loss(model(windows, extractor, "svc"))
        loss.backward()
    assert np.isfinite(loss.data).all()
