"""Direct unit tests for the broadcast-reversing gradient reduction."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, _unbroadcast


class TestReduction:
    def test_identity_when_shapes_match(self):
        grad = np.arange(6.0).reshape(2, 3)
        out = _unbroadcast(grad, (2, 3))
        assert out is grad

    def test_scalar_vs_matrix(self):
        grad = np.ones((4, 5))
        out = _unbroadcast(grad, ())
        assert out.shape == ()
        assert out == 20.0

    def test_leading_axes_summed(self):
        grad = np.ones((2, 3, 4))
        out = _unbroadcast(grad, (4,))
        np.testing.assert_array_equal(out, np.full(4, 6.0))

    def test_leading_one_dims_kept(self):
        grad = np.arange(12.0).reshape(3, 4)
        out = _unbroadcast(grad, (1, 4))
        assert out.shape == (1, 4)
        np.testing.assert_array_equal(out, grad.sum(axis=0, keepdims=True))

    def test_interior_one_dim(self):
        grad = np.ones((2, 5, 3))
        out = _unbroadcast(grad, (2, 1, 3))
        assert out.shape == (2, 1, 3)
        np.testing.assert_array_equal(out, np.full((2, 1, 3), 5.0))

    def test_zero_size_axis_preserved(self):
        grad = np.zeros((3, 0, 4))
        out = _unbroadcast(grad, (3, 0, 4))
        assert out.shape == (3, 0, 4)

    def test_zero_size_axis_reduced_from_broadcast(self):
        grad = np.zeros((2, 0, 5))
        out = _unbroadcast(grad, (1, 0, 5))
        assert out.shape == (1, 0, 5)


class TestRejections:
    def test_fewer_dims_than_operand_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            _unbroadcast(np.ones(4), (2, 4))
        assert "fewer dimensions" in str(excinfo.value)

    def test_incompatible_axis_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            _unbroadcast(np.ones((2, 5)), (2, 3))
        assert "not a broadcast" in str(excinfo.value)

    def test_shrinking_axis_rejected(self):
        # grad axis 1 cannot have broadcast *down* from 3 to 1.
        with pytest.raises(ValueError):
            _unbroadcast(np.ones((2, 1)), (2, 3))


class TestThroughOps:
    def test_bias_gradient_sums_over_batch(self):
        x = Tensor(np.ones((8, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        (x + bias).sum().backward()
        np.testing.assert_array_equal(bias.grad, np.full(3, 8.0))
        np.testing.assert_array_equal(x.grad, np.ones((8, 3)))

    def test_keepdim_operand_gradient(self):
        scale = Tensor(np.ones((1, 4)), requires_grad=True)
        x = Tensor(np.arange(8.0).reshape(2, 4), requires_grad=True)
        (x * scale).sum().backward()
        assert scale.grad.shape == (1, 4)
        np.testing.assert_array_equal(scale.grad, x.data.sum(0, keepdims=True))

    def test_scalar_operand_gradient(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        (x * s).sum().backward()
        assert s.grad.shape == ()
        assert float(s.grad) == 9.0
