"""Table VI — baselines tailored per service vs unified MACE.

Baselines get the favourable setting the paper grants them (a fresh model
per service, trained long enough to converge); MACE still uses ONE model
per group.  The paper's shape: tailored baselines improve a lot on diverse
datasets, and MACE stays competitive despite the 10-to-1 model handicap.
"""

from common import (
    TABLE_DATASETS,
    baseline_factory,
    tailored_factory,
    bench_dataset,
    mace_factory,
    run_once,
    save_results,
    scale_params,
)
from repro.data import tailored_singletons, unified_groups
from repro.eval import format_table, run_tailored, run_unified

PAPER_F1 = {
    "DCdetector": {"smd": 0.872, "j-d1": 0.748, "j-d2": 0.913, "smap": 0.970},
    "AnomalyTransformer": {"smd": 0.923, "j-d1": 0.645, "j-d2": 0.896,
                           "smap": 0.967},
    "DVGCRN": {"smd": 0.915, "j-d1": 0.479, "j-d2": 0.723, "smap": 0.914},
    "JumpStarter": {"smd": 0.923, "j-d1": 0.933, "j-d2": 0.968, "smap": 0.526},
    "OmniAnomaly": {"smd": 0.728, "j-d1": 0.905, "j-d2": 0.958, "smap": 0.744},
    "MSCRED": {"smd": 0.716, "j-d1": 0.889, "j-d2": 0.958, "smap": 0.923},
    "TranAD": {"smd": 0.961, "j-d1": 0.349, "j-d2": 0.817, "smap": 0.892},
    "ProS": {"smd": 0.206, "j-d1": 0.506, "j-d2": 0.821, "smap": 0.509},
    "VAE": {"smd": 0.255, "j-d1": 0.385, "j-d2": 0.763, "smap": 0.648},
    "MACE": {"smd": 0.910, "j-d1": 0.934, "j-d2": 0.961, "smap": 0.977},
}

METHODS = ("DCdetector", "AnomalyTransformer", "DVGCRN", "JumpStarter",
           "OmniAnomaly", "MSCRED", "TranAD", "ProS", "VAE")


def compute_table():
    params = scale_params()
    results = {}
    for dataset_name in TABLE_DATASETS:
        dataset = bench_dataset(dataset_name)
        singles = tailored_singletons(dataset, limit=params["tailored_limit"])
        per_method = {}
        for method in METHODS:
            per_method[method] = run_tailored(tailored_factory(method), singles)
        per_method["MACE"] = run_unified(
            mace_factory(), unified_groups(dataset, params["group_size"])
        )
        results[dataset_name] = per_method
    return results


def test_table6_tailored(benchmark):
    results = run_once(benchmark, compute_table)
    print()
    measured = {}
    for dataset_name, per_method in results.items():
        rows = []
        measured[dataset_name] = {}
        for method, outcome in per_method.items():
            measured[dataset_name][method] = {
                "precision": outcome.precision,
                "recall": outcome.recall,
                "f1": outcome.f1,
            }
            rows.append((method, outcome.precision, outcome.recall,
                         outcome.f1, PAPER_F1[method][dataset_name]))
        print(format_table(
            ("method", "precision", "recall", "F1", "paper F1"), rows,
            title=(f"Table VI [{dataset_name}] — baselines tailored/service, "
                   f"MACE unified/group"),
        ))
        print()
    save_results("table6", {"measured": measured, "paper": PAPER_F1})

    # Shape: MACE's single model stays within reach of the best tailored
    # baseline on every dataset (the paper reports "comparable"; on SMD the
    # tailored baselines may edge ahead, as in the paper).
    for dataset_name, per_method in results.items():
        best_tailored = max(
            outcome.f1 for method, outcome in per_method.items()
            if method != "MACE"
        )
        assert per_method["MACE"].f1 >= best_tailored - 0.18, (
            f"{dataset_name}: MACE not competitive with tailored baselines"
        )
