"""Baseline detectors compared against MACE (paper §V-A).

All expose the :class:`~repro.core.detector.AnomalyDetector` API.  Each is a
documented "lite" reimplementation that preserves the original method's
defining mechanism and cost profile; see each module's docstring and
DESIGN.md §2 for what was reduced.
"""

from repro.baselines.anomaly_transformer import AnomalyTransformerDetector
from repro.baselines.base import BaselineConfig, NeuralWindowDetector
from repro.baselines.dcdetector import DcDetector
from repro.baselines.dvgcrn import DvgcrnDetector
from repro.baselines.jumpstarter import JumpStarterDetector
from repro.baselines.lstm_ndt import LstmNdtDetector, ndt_threshold
from repro.baselines.mscred import MscredDetector
from repro.baselines.omni import OmniAnomalyDetector
from repro.baselines.pros import ProsDetector
from repro.baselines.tranad import TranAdDetector
from repro.baselines.vae import VaeDetector

ALL_BASELINES = {
    "DCdetector": DcDetector,
    "AnomalyTransformer": AnomalyTransformerDetector,
    "DVGCRN": DvgcrnDetector,
    "JumpStarter": JumpStarterDetector,
    "OmniAnomaly": OmniAnomalyDetector,
    "MSCRED": MscredDetector,
    "TranAD": TranAdDetector,
    "ProS": ProsDetector,
    "VAE": VaeDetector,
    "LSTM-NDT": LstmNdtDetector,
}

__all__ = [
    "BaselineConfig",
    "NeuralWindowDetector",
    "AnomalyTransformerDetector",
    "DcDetector",
    "DvgcrnDetector",
    "JumpStarterDetector",
    "LstmNdtDetector",
    "ndt_threshold",
    "MscredDetector",
    "OmniAnomalyDetector",
    "ProsDetector",
    "TranAdDetector",
    "VaeDetector",
    "ALL_BASELINES",
]
