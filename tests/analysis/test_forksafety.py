"""repro.analysis.forksafety: FS601-FS603 on synthetic and real packages."""

from repro.analysis.effects import analyze_package
from repro.analysis.forksafety import (
    check_fork_safety,
    worker_reachable,
    worker_targets,
)


def make_pkg(tmp_path, files):
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return analyze_package(root=root)


WORKER_PKG = {
    "sinks.py": (
        "_LOG = []\n"
        "def install(log):\n"
        "    global _LOG\n"
        "    _LOG = log\n"
        "def emit(record):\n"
        "    _LOG.append(record)\n"
    ),
    "work.py": (
        "import multiprocessing\n"
        "from pkg.sinks import emit\n"
        "def _job(payload):\n"
        "    emit(payload)\n"
        "def launch(payload):\n"
        "    ctx = multiprocessing.get_context('spawn')\n"
        "    process = ctx.Process(target=_job, args=(payload,))\n"
        "    process.start()\n"
        "    process.join(5.0)\n"
    ),
}


class TestWorkerDiscovery:
    def test_process_target_found(self, tmp_path):
        model = make_pkg(tmp_path, WORKER_PKG)
        assert worker_targets(model) == ["pkg.work._job"]

    def test_reachability_crosses_modules(self, tmp_path):
        model = make_pkg(tmp_path, WORKER_PKG)
        reached = worker_reachable(model)
        assert "pkg.sinks.emit" in reached
        assert reached["pkg.sinks.emit"] == "pkg.work._job"


class TestSharedGlobals:
    def test_swap_point_read_in_worker_fires(self, tmp_path):
        model = make_pkg(tmp_path, WORKER_PKG)
        findings = [f for f in check_fork_safety(model)
                    if f.rule == "FS601" and not f.suppressed]
        assert any(f.op == "_LOG" and "emit" in f.module_path
                   for f in findings)

    def test_audited_annotation_suppresses(self, tmp_path):
        files = dict(WORKER_PKG)
        files["sinks.py"] = files["sinks.py"].replace(
            "    _LOG.append(record)",
            "    _LOG.append(record)  # effects: ok FORK_GLOBAL "
            "reason=workers install their own")
        model = make_pkg(tmp_path, files)
        findings = [f for f in check_fork_safety(model)
                    if f.rule == "FS601" and f.op == "_LOG"
                    and "emit" in f.module_path]
        assert findings and all(f.suppressed for f in findings)

    def test_unrebound_global_is_not_flagged(self, tmp_path):
        files = dict(WORKER_PKG)
        files["sinks.py"] = (
            "_FROZEN = (1, 2)\n"
            "def emit(record):\n"
            "    return _FROZEN\n"
        )
        model = make_pkg(tmp_path, files)
        assert [f for f in check_fork_safety(model)
                if f.rule == "FS601"] == []


class TestAtomicWrites:
    def test_plain_write_in_mp_module_fires(self, tmp_path):
        model = make_pkg(tmp_path, {"work.py": (
            "import multiprocessing\n"
            "def dump(path, data):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(data)\n"
        )})
        findings = [f for f in check_fork_safety(model)
                    if f.rule == "FS602"]
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_write_then_rename_is_clean(self, tmp_path):
        model = make_pkg(tmp_path, {"work.py": (
            "import multiprocessing\n"
            "import os\n"
            "def dump(path, data):\n"
            "    with open(path + '.tmp', 'w') as handle:\n"
            "        handle.write(data)\n"
            "    os.replace(path + '.tmp', path)\n"
        )})
        assert [f for f in check_fork_safety(model)
                if f.rule == "FS602"] == []

    def test_append_mode_is_exempt(self, tmp_path):
        model = make_pkg(tmp_path, {"work.py": (
            "import multiprocessing\n"
            "def journal(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"
        )})
        assert [f for f in check_fork_safety(model)
                if f.rule == "FS602"] == []

    def test_write_outside_mp_scope_ignored(self, tmp_path):
        model = make_pkg(tmp_path, {"plain.py": (
            "def dump(path, data):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(data)\n"
        )})
        assert [f for f in check_fork_safety(model)
                if f.rule == "FS602"] == []


class TestProcessLifecycle:
    def test_started_never_joined_fires(self, tmp_path):
        model = make_pkg(tmp_path, {"work.py": (
            "import multiprocessing\n"
            "def fire_and_forget(job):\n"
            "    process = multiprocessing.Process(target=job)\n"
            "    process.start()\n"
        )})
        findings = [f for f in check_fork_safety(model)
                    if f.rule == "FS603"]
        assert len(findings) == 1
        assert "never joined" in findings[0].message

    def test_joined_process_is_clean(self, tmp_path):
        model = make_pkg(tmp_path, WORKER_PKG)
        assert [f for f in check_fork_safety(model)
                if f.rule == "FS603"] == []

    def test_escaping_handle_is_clean(self, tmp_path):
        model = make_pkg(tmp_path, {"work.py": (
            "import multiprocessing\n"
            "class Pool:\n"
            "    def launch(self, job):\n"
            "        process = multiprocessing.Process(target=job)\n"
            "        process.start()\n"
            "        self.child = process\n"
        )})
        assert [f for f in check_fork_safety(model)
                if f.rule == "FS603"] == []

    def test_unclosed_queue_fires(self, tmp_path):
        model = make_pkg(tmp_path, {"work.py": (
            "import multiprocessing\n"
            "def scratch():\n"
            "    queue = multiprocessing.Queue()\n"
            "    queue.put(1)\n"
            "    return queue.get()\n"
        )})
        findings = [f for f in check_fork_safety(model)
                    if f.rule == "FS603"]
        assert len(findings) == 1
        assert "never closed" in findings[0].message

    def test_closed_queue_is_clean(self, tmp_path):
        model = make_pkg(tmp_path, {"work.py": (
            "import multiprocessing\n"
            "def scratch():\n"
            "    queue = multiprocessing.Queue()\n"
            "    queue.put(1)\n"
            "    value = queue.get()\n"
            "    queue.close()\n"
            "    return value\n"
        )})
        assert [f for f in check_fork_safety(model)
                if f.rule == "FS603"] == []


class TestRealRepository:
    def test_fleet_worker_is_discovered(self):
        model = analyze_package()
        assert "repro.runtime.orchestrator._run_group_job" in \
            worker_targets(model)

    def test_no_unaudited_fork_findings(self):
        findings = check_fork_safety()
        assert [f for f in findings if not f.suppressed] == []
