"""Pattern extraction: per-service subspaces + cached transform modules.

This object is MACE's "memory": the neural weights are shared across every
service, while the context-aware DFT/IDFT pair is looked up per service.
Handling a previously unseen service only requires fitting its subspace
(a cheap counting pass over its training windows) — no retraining — which is
what powers the Table VIII transfer experiment.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.frequency.basis import FourierBasis, num_rfft_bins
from repro.frequency.context_aware import (
    ContextAwareDFT,
    ContextAwareIDFT,
    ServiceSubspace,
    SubspaceBank,
    count_basis_incidence,
)

__all__ = ["PatternExtractor"]


class PatternExtractor:
    """Fit, store and serve per-service normal-pattern subspaces."""

    def __init__(self, window: int, num_bases: int, stride: int = 1,
                 include_dc: bool = True, context_aware: bool = True):
        self.window = window
        self.num_bases = num_bases
        self.context_aware = context_aware
        self.bank = SubspaceBank(window, num_bases, stride=stride,
                                 include_dc=include_dc)
        self._transforms: Dict[str, Tuple[ContextAwareDFT, ContextAwareIDFT]] = {}
        # Per-service, per-feature basis-incidence counts; kept so
        # update_service() can adapt subspaces incrementally.
        self._counts: Dict[str, list] = {}

    def fit(self, service_ids: Sequence[str],
            train_series: Sequence[np.ndarray]) -> "PatternExtractor":
        """Fit subspaces for a fleet of services."""
        for service_id, series in zip(service_ids, train_series):
            self.fit_service(service_id, series)
        return self

    def fit_service(self, service_id: str, series: np.ndarray) -> ServiceSubspace:
        """Fit (or refit) one service; invalidates its cached transforms."""
        if series.ndim == 1:
            series = series[:, None]
        if self.context_aware:
            subspace = self.bank.fit_service(service_id, series)
            from repro.frequency.context_aware import _sliding_windows

            self._counts[service_id] = [
                count_basis_incidence(
                    _sliding_windows(series[:, f], self.window,
                                     self.bank.stride),
                    self.num_bases,
                ).astype(float)
                for f in range(series.shape[1])
            ]
        else:
            # Ablation: vanilla DFT/IDFT over the complete spectrum.
            subspace = ServiceSubspace.full_spectrum(self.window, series.shape[1])
            self.bank.add(service_id, subspace)
        self._transforms.pop(service_id, None)
        return subspace

    def update_service(self, service_id: str, new_series: np.ndarray,
                       decay: float = 0.9) -> ServiceSubspace:
        """Adapt a service's subspace to fresh normal data (pattern drift).

        Incremental counterpart of :meth:`fit_service`: the stored
        basis-incidence counts are exponentially decayed and the counts
        from ``new_series``' windows are added, then the top bases are
        re-selected.  Cheap (one counting pass), no gradient steps — the
        streaming analogue of the paper's preprocessing stage.
        """
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if not self.context_aware:
            return self.bank.get(service_id)
        if new_series.ndim == 1:
            new_series = new_series[:, None]
        counts = self._counts.get(service_id)
        if counts is None:
            return self.fit_service(service_id, new_series)
        from repro.frequency.context_aware import (
            _sliding_windows,
            select_dominant_bases,
        )

        bases = []
        for feature in range(new_series.shape[1]):
            windows = _sliding_windows(new_series[:, feature], self.window,
                                       self.bank.stride)
            fresh = count_basis_incidence(windows, self.num_bases)
            counts[feature] = decay * counts[feature] + fresh
            order = np.argsort(counts[feature], kind="stable")[::-1]
            selected = [0] if self.bank.include_dc else []
            for index in order:
                if len(selected) >= min(self.num_bases,
                                        num_rfft_bins(self.window)):
                    break
                if int(index) not in selected:
                    selected.append(int(index))
            bases.append(FourierBasis(self.window, sorted(selected)))
        subspace = ServiceSubspace(bases)
        self.bank.add(service_id, subspace)
        self._transforms.pop(service_id, None)
        return subspace

    def subspace(self, service_id: str) -> ServiceSubspace:
        return self.bank.get(service_id)

    def transforms(self, service_id: str) -> Tuple[ContextAwareDFT, ContextAwareIDFT]:
        """Cached, amplitude-normalised DFT/IDFT modules for a service."""
        if service_id not in self._transforms:
            subspace = self.bank.get(service_id)
            self._transforms[service_id] = (
                ContextAwareDFT(subspace, normalized=True),
                ContextAwareIDFT(subspace, normalized=True),
            )
        return self._transforms[service_id]

    def coefficient_width(self, service_id: str) -> int:
        """Width ``2k`` of the coefficient vector for a service."""
        return 2 * self.bank.get(service_id).k

    def __contains__(self, service_id: str) -> bool:
        return service_id in self.bank

    def service_ids(self):
        return self.bank.service_ids()
