"""Dataset registry: discoverable profiles, custom registration."""

from __future__ import annotations

from typing import List

from repro.data.datasets import PROFILES, Dataset, DatasetProfile, load_dataset

__all__ = ["available_datasets", "register_profile", "get_profile"]


def available_datasets() -> List[str]:
    """Names accepted by :func:`repro.data.load_dataset`."""
    return sorted(PROFILES)


def register_profile(profile: DatasetProfile, overwrite: bool = False) -> None:
    """Add a custom dataset profile to the registry."""
    key = profile.name.lower()
    if key in PROFILES and not overwrite:
        raise KeyError(f"profile {profile.name!r} already registered")
    PROFILES[key] = profile


def get_profile(name: str) -> DatasetProfile:
    key = name.lower()
    if key not in PROFILES:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(PROFILES)}")
    return PROFILES[key]
