"""TranAD-lite (Tuli et al., VLDB 2022).

The original trains a transformer encoder with two decoders in a
self-conditioning, adversarial two-phase scheme: phase 1 reconstructs the
window; phase 2 re-encodes conditioned on the phase-1 *focus score*
(squared deviation) and is trained adversarially.  This reduction keeps the
two-phase self-conditioning (which is where TranAD's short-anomaly
sensitivity comes from) with a simplified combined loss instead of the GAN
alternation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spec import TensorSpec, child_contract
from repro.baselines.base import BaselineConfig, NeuralWindowDetector
from repro.nn import functional as F
from repro.nn.modules.attention import TransformerEncoderLayer
from repro.nn.modules.base import Module
from repro.nn.modules.linear import Linear
from repro.nn.modules.positional import sinusoidal_positions
from repro.nn.tensor import Tensor

__all__ = ["TranAdModel", "TranAdDetector"]


class TranAdModel(Module):
    """Transformer encoder + two decoders with focus-score conditioning."""

    def __init__(self, window: int, num_features: int, dim: int = 16,
                 heads: int = 4, rng: np.random.Generator | None = None):
        super().__init__()
        self.window = window
        self.num_features = num_features
        self.embed = Linear(2 * num_features, dim, rng=rng)
        self.encoder = TransformerEncoderLayer(dim, heads, rng=rng)
        self.decoder1 = Linear(dim, num_features, rng=rng)
        self.decoder2 = Linear(dim, num_features, rng=rng)
        self.register_buffer("positions", sinusoidal_positions(window, dim))

    def _encode(self, windows: Tensor, focus: Tensor) -> Tensor:
        from repro.nn.tensor import concatenate

        stacked = concatenate([windows, focus], axis=-1)
        embedded = self.embed(stacked) + Tensor(self.positions[None])
        return self.encoder(embedded)

    def forward(self, windows: Tensor):
        zero_focus = Tensor(np.zeros(windows.shape))
        phase1 = self.decoder1(self._encode(windows, zero_focus))
        focus = Tensor((phase1.data - windows.data) ** 2)  # self-conditioning
        phase2 = self.decoder2(self._encode(windows, focus))
        return phase1, phase2

    def contract(self, spec: TensorSpec):
        spec.require_ndim(3, "TranAdModel")
        spec.require_axis(1, self.window, "TranAdModel", "window")
        spec.require_axis(2, self.num_features, "TranAdModel", "num_features")
        stacked = spec.with_shape(
            (spec.shape[0], spec.shape[1], spec.shape[2] * 2)
        )
        embedded = child_contract("embed", self.embed, stacked)
        encoded = child_contract("encoder", self.encoder, embedded)
        phase1 = child_contract("decoder1", self.decoder1, encoded)
        phase2 = child_contract("decoder2", self.decoder2, encoded)
        return phase1, phase2


class TranAdDetector(NeuralWindowDetector):
    """TranAD-lite on the shared detector API."""

    name = "TranAD"

    def __init__(self, config: BaselineConfig | None = None, dim: int = 16,
                 heads: int = 4, epsilon: float = 0.5):
        super().__init__(config)
        self.dim = dim
        self.heads = heads
        self.epsilon = epsilon

    def build_model(self, num_features: int) -> Module:
        return TranAdModel(self.config.window, num_features, self.dim,
                           self.heads, rng=self.rng)

    def model_loss(self, model: Module, windows: Tensor,
                   service_id: str) -> Tensor:
        phase1, phase2 = model(windows)
        return (
            self.epsilon * F.mse_loss(phase1, windows)
            + (1.0 - self.epsilon) * F.mse_loss(phase2, windows)
        )

    def window_errors(self, model: Module, windows: np.ndarray,
                      service_id: str) -> np.ndarray:
        phase1, phase2 = model(Tensor(windows))
        error1 = ((phase1.data - windows) ** 2).mean(axis=-1)
        error2 = ((phase2.data - windows) ** 2).mean(axis=-1)
        return 0.5 * (error1 + error2)
