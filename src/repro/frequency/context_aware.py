"""Context-aware DFT / IDFT: the pattern-extraction projection of MACE.

Preprocessing (paper §IV-C): for every service, slide windows over the
training series, record which Fourier bases appear among the top-``k``
strongest signals of each window, and keep the ``k`` bases with the highest
incidence as that service's *normal-pattern subspace*.  During training and
inference, the context-aware DFT projects windows onto the subspace only,
and the context-aware IDFT synthesises time series from those bases only.

Both transforms are constant linear maps, so they are exposed as autograd
modules (:class:`ContextAwareDFT`, :class:`ContextAwareIDFT`) that
gradient-check cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.spec import TensorSpec
from repro.frequency.basis import FourierBasis, num_rfft_bins
from repro.frequency.dft import rfft_amplitude
from repro.nn.modules.base import Module
from repro.nn.tensor import Tensor

__all__ = [
    "count_basis_incidence",
    "select_dominant_bases",
    "ServiceSubspace",
    "SubspaceBank",
    "ContextAwareDFT",
    "ContextAwareIDFT",
]


def count_basis_incidence(windows: np.ndarray, k: int,
                          skip_dc: bool = True) -> np.ndarray:
    """Count, per rFFT bin, how often it ranks in a window's top-``k``.

    ``windows`` is ``(W, T)`` for one feature.  Returns an integer count per
    bin.  The DC bin is excluded from ranking when ``skip_dc`` because it
    encodes the window mean rather than an oscillatory "signal".
    """
    if windows.ndim != 2:
        raise ValueError("expected (num_windows, window_length)")
    amplitude = rfft_amplitude(windows)  # (W, B)
    bins = amplitude.shape[-1]
    if skip_dc:
        amplitude = amplitude.copy()
        amplitude[:, 0] = -np.inf
    k = min(k, bins - int(skip_dc))
    top = np.argpartition(amplitude, -k, axis=-1)[:, -k:]
    counts = np.bincount(top.reshape(-1), minlength=bins)
    return counts


def select_dominant_bases(windows: np.ndarray, k: int, include_dc: bool = True,
                          skip_dc_in_ranking: bool = True) -> np.ndarray:
    """Select the ``k`` bases with the highest top-``k`` incidence.

    When ``include_dc`` the DC bin is always part of the subset (windows are
    not mean-removed, so dropping DC would make reconstruction of the window
    level impossible); the remaining ``k - 1`` slots go to the most frequent
    oscillatory bases.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    counts = count_basis_incidence(windows, k, skip_dc=skip_dc_in_ranking)
    bins = counts.size
    k = min(k, bins)
    candidates = np.argsort(counts, kind="stable")[::-1]
    selected: List[int] = [0] if include_dc else []
    for index in candidates:
        if len(selected) >= k:
            break
        if int(index) not in selected:
            selected.append(int(index))
    return np.asarray(sorted(selected), dtype=np.int64)


def _sliding_windows(series: np.ndarray, window: int, stride: int) -> np.ndarray:
    """``(T_total,) -> (W, window)`` view with the given stride."""
    from numpy.lib.stride_tricks import sliding_window_view

    if series.shape[0] < window:
        raise ValueError("series shorter than window")
    return sliding_window_view(series, window, axis=0)[::stride]


@dataclass
class ServiceSubspace:
    """Per-feature Fourier bases forming one service's normal pattern.

    ``bases[f]`` is the :class:`FourierBasis` selected for feature ``f``.
    All features share ``k`` so projections stack into one tensor.
    """

    bases: List[FourierBasis]

    def __post_init__(self):
        if not self.bases:
            raise ValueError("subspace needs at least one feature")
        ks = {basis.k for basis in self.bases}
        if len(ks) != 1:
            raise ValueError("all features must select the same number of bases")
        windows = {basis.window for basis in self.bases}
        if len(windows) != 1:
            raise ValueError("all features must share the window length")
        # (m, 2k, T) analysis stack and (m, T, 2k) synthesis stack.
        self._forward = np.stack([basis.forward for basis in self.bases])
        self._inverse = np.stack([basis.inverse for basis in self.bases])

    @classmethod
    def fit(cls, series: np.ndarray, window: int, k: int, stride: int = 1,
            include_dc: bool = True) -> "ServiceSubspace":
        """Learn the subspace from a training series ``(T_total, m)``."""
        if series.ndim == 1:
            series = series[:, None]
        bases = []
        for feature in range(series.shape[1]):
            windows = _sliding_windows(series[:, feature], window, stride)
            indices = select_dominant_bases(windows, k, include_dc=include_dc)
            bases.append(FourierBasis(window, indices))
        return cls(bases)

    @classmethod
    def full_spectrum(cls, window: int, num_features: int) -> "ServiceSubspace":
        """Vanilla-DFT subspace (every basis), for the Table IX ablation."""
        return cls([FourierBasis.full(window) for _ in range(num_features)])

    @property
    def k(self) -> int:
        return self.bases[0].k

    @property
    def window(self) -> int:
        return self.bases[0].window

    @property
    def num_features(self) -> int:
        return len(self.bases)

    @property
    def frequencies(self) -> np.ndarray:
        """``(m, k)`` selected frequencies in cycles/sample."""
        return np.stack([basis.frequencies for basis in self.bases])

    def project(self, windows: np.ndarray) -> np.ndarray:
        """``(N, T, m) -> (N, m, 2k)`` interleaved Re/Im coefficients."""
        batch = np.moveaxis(np.asarray(windows), -1, 1)  # (N, m, T)
        return np.einsum("nmt,mct->nmc", batch, self._forward, optimize=True)

    def reconstruct(self, coeffs: np.ndarray) -> np.ndarray:
        """``(N, m, 2k) -> (N, T, m)`` synthesis."""
        batch = np.einsum("nmc,mtc->nmt", np.asarray(coeffs), self._inverse,
                          optimize=True)
        return np.moveaxis(batch, 1, -1)

    def coverage(self, windows: np.ndarray, eps: float = 1e-12) -> np.ndarray:
        """Per-window normal-energy coverage ``Σ_{i≤k} q(ω_i)`` (Corollary 1).

        Values above ``k / n`` are the regime where Theorem 2 guarantees a
        positive reconstruction-error gap.
        """
        batch = np.moveaxis(np.asarray(windows), -1, 1)  # (N, m, T)
        amplitude = rfft_amplitude(batch)
        total = amplitude.sum(axis=-1)
        selected = np.stack(
            [amplitude[:, f, basis.indices].sum(axis=-1)
             for f, basis in enumerate(self.bases)], axis=1,
        )
        return selected / np.maximum(total, eps)

    def to_dict(self) -> dict:
        return {"bases": [basis.to_dict() for basis in self.bases]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceSubspace":
        return cls([FourierBasis.from_dict(b) for b in payload["bases"]])


class SubspaceBank:
    """Normal-pattern subspaces for a fleet of services (the unified model).

    The bank is the "memory" that lets one model serve many normal patterns:
    model weights are shared, the subspace is looked up per service.
    """

    def __init__(self, window: int, k: int, stride: int = 1, include_dc: bool = True):
        self.window = window
        self.k = k
        self.stride = stride
        self.include_dc = include_dc
        self._subspaces: Dict[str, ServiceSubspace] = {}

    def fit_service(self, service_id: str, series: np.ndarray) -> ServiceSubspace:
        """Learn and store the subspace for one service's training series."""
        subspace = ServiceSubspace.fit(
            series, self.window, self.k, stride=self.stride,
            include_dc=self.include_dc,
        )
        self._subspaces[service_id] = subspace
        return subspace

    def add(self, service_id: str, subspace: ServiceSubspace) -> None:
        if subspace.window != self.window:
            raise ValueError("subspace window mismatch")
        self._subspaces[service_id] = subspace

    def get(self, service_id: str) -> ServiceSubspace:
        if service_id not in self._subspaces:
            raise KeyError(f"no subspace fitted for service {service_id!r}")
        return self._subspaces[service_id]

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._subspaces

    def __len__(self) -> int:
        return len(self._subspaces)

    def service_ids(self) -> List[str]:
        return list(self._subspaces)

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "k": self.k,
            "stride": self.stride,
            "include_dc": self.include_dc,
            "subspaces": {sid: s.to_dict() for sid, s in self._subspaces.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SubspaceBank":
        bank = cls(payload["window"], payload["k"], payload["stride"],
                   payload["include_dc"])
        for service_id, sub in payload["subspaces"].items():
            bank.add(service_id, ServiceSubspace.from_dict(sub))
        return bank


class ContextAwareDFT(Module):
    """Differentiable projection onto a service subspace.

    Input ``(N, T, m)`` tensor, output ``(N, m, 2k)`` coefficients.
    """

    def __init__(self, subspace: ServiceSubspace, normalized: bool = False):
        super().__init__()
        self.subspace = subspace
        self.normalized = normalized
        # (m, T, 2k): batched matmul weight, constant (not a Parameter).
        weight = np.swapaxes(subspace._forward, 1, 2)
        if normalized:
            # Scale coefficients to amplitude units (O(1) for unit-variance
            # windows) so high dualistic powers stay numerically stable;
            # the paired IDFT undoes the scaling.
            weight = weight * (2.0 / subspace.window)
        self._weight = Tensor(np.ascontiguousarray(weight))

    def forward(self, windows: Tensor) -> Tensor:
        n, t, m = windows.shape
        batch = windows.swapaxes(1, 2).reshape(n, m, 1, t)  # row vectors
        out = batch @ self._weight  # (N, m, 1, 2k) via batch broadcast
        return out.reshape(n, m, out.shape[-1])

    def contract(self, spec: TensorSpec) -> TensorSpec:
        spec.require_ndim(3, "ContextAwareDFT")
        spec.require_axis(1, self.subspace.window, "ContextAwareDFT", "window")
        spec.require_axis(2, self._weight.shape[0], "ContextAwareDFT",
                          "num_features")
        return spec.with_shape(
            (spec.shape[0], spec.shape[2], self._weight.shape[-1])
        )


class ContextAwareIDFT(Module):
    """Differentiable synthesis from subspace coefficients.

    Input ``(N, m, 2k)``, output ``(N, T, m)``.
    """

    def __init__(self, subspace: ServiceSubspace, normalized: bool = False):
        super().__init__()
        self.subspace = subspace
        self.normalized = normalized
        # (m, 2k, T)
        weight = np.swapaxes(subspace._inverse, 1, 2)
        if normalized:
            weight = weight * (subspace.window / 2.0)
        self._weight = Tensor(np.ascontiguousarray(weight))

    def forward(self, coeffs: Tensor) -> Tensor:
        n, m, c = coeffs.shape
        batch = coeffs.reshape(n, m, 1, c) @ self._weight  # (N, m, 1, T)
        return batch.reshape(n, m, batch.shape[-1]).swapaxes(1, 2)

    def contract(self, spec: TensorSpec) -> TensorSpec:
        spec.require_ndim(3, "ContextAwareIDFT")
        spec.require_axis(1, self._weight.shape[0], "ContextAwareIDFT",
                          "num_features")
        spec.require_axis(2, self._weight.shape[1], "ContextAwareIDFT",
                          "num_coefficients")
        return spec.with_shape(
            (spec.shape[0], self.subspace.window, spec.shape[1])
        )
