"""Synthetic multi-service datasets with labelled anomalies."""

from repro.data.anomalies import (
    AnomalyKind,
    AnomalySegment,
    InjectionResult,
    default_mix,
    inject_anomalies,
    kind_ratios,
)
from repro.data.datasets import PROFILES, Dataset, DatasetProfile, load_dataset
from repro.data.generators import Normalizer, ServiceData, generate_service
from repro.data.patterns import (
    ArNoise,
    FeaturePattern,
    NormalPattern,
    SawtoothWave,
    Sinusoid,
    SquareWave,
    Trend,
    perturb_pattern,
    random_pattern,
)
from repro.data.contamination import ContaminatedService, contaminate_training
from repro.data.io import load_dataset_file, save_dataset, service_from_arrays
from repro.data.registry import available_datasets, get_profile, register_profile
from repro.data.splits import (
    GroupSplit,
    tailored_singletons,
    transfer_pair,
    unified_groups,
)
from repro.data.windows import (
    WindowBatch,
    WindowDataset,
    scores_to_timeline,
    sliding_windows,
    window_starts,
)

__all__ = [
    "AnomalyKind", "AnomalySegment", "InjectionResult", "default_mix",
    "inject_anomalies", "kind_ratios",
    "PROFILES", "Dataset", "DatasetProfile", "load_dataset",
    "Normalizer", "ServiceData", "generate_service",
    "ArNoise", "FeaturePattern", "NormalPattern", "SawtoothWave", "Sinusoid",
    "SquareWave", "Trend", "perturb_pattern", "random_pattern",
    "available_datasets", "get_profile", "register_profile",
    "load_dataset_file", "save_dataset", "service_from_arrays",
    "ContaminatedService", "contaminate_training",
    "GroupSplit", "tailored_singletons", "transfer_pair", "unified_groups",
    "WindowBatch", "WindowDataset", "scores_to_timeline", "sliding_windows",
    "window_starts",
]
