"""Divergence guard: detection, rewind, LR escalation, and the trainer's
non-finite-batch bugfix (skip the step, record the event)."""

import numpy as np
import pytest

from repro.core import MaceTrainer
from repro.runtime import (
    Checkpointer,
    DivergenceError,
    DivergenceGuard,
    robust_spike_threshold,
)
from tests.runtime.conftest import fleet_config


def _fit_args(dataset):
    services = list(dataset)[:2]
    return ([s.service_id for s in services],
            [s.train for s in services])


def _nan_once(epoch, batch):
    """Batch hook poisoning one (epoch, batch) loss exactly once."""
    fired = []

    def hook(e, b, loss):
        if (e, b) == (epoch, batch) and not fired:
            fired.append(True)
            return loss * float("nan")
        return None

    return hook


class TestRobustSpikeThreshold:
    def test_needs_min_history(self):
        assert robust_spike_threshold([1.0, 1.1], min_history=3) is None

    def test_threshold_above_median(self):
        threshold = robust_spike_threshold([1.0, 1.1, 0.9, 1.05], mads=10.0)
        assert threshold > 1.025

    def test_tolerates_nonfinite_history(self):
        threshold = robust_spike_threshold(
            [1.0, float("nan"), 1.1, 0.9, float("inf")], min_history=3)
        assert threshold is not None and np.isfinite(threshold)

    def test_flat_history_does_not_flag_noise(self):
        threshold = robust_spike_threshold([2.0, 2.0, 2.0, 2.0], mads=10.0)
        assert threshold > 2.0  # MAD floor keeps epsilon moves below it


class TestNonFiniteBatchBugfix:
    """Satellite regression: a NaN batch loss must not reach the weights."""

    def test_step_skipped_and_event_recorded(self, fleet_dataset):
        ids, trains = _fit_args(fleet_dataset)
        trainer = MaceTrainer(fleet_config(epochs=2))
        trainer.fit(ids, trains, batch_hook=_nan_once(0, 0))
        assert trainer.history.nonfinite_batches == [(0, 0)]
        assert trainer.history.nonfinite_in_epoch(0) == 1
        assert trainer.history.nonfinite_in_epoch(1) == 0
        # The poisoned batch contributed nothing: every weight is finite
        # and the epoch averages are finite too.
        for name, value in trainer.model.state_dict().items():
            assert np.all(np.isfinite(value)), name
        assert np.all(np.isfinite(trainer.history.epoch_losses))

    def test_unguarded_run_survives_but_differs(self, fleet_dataset):
        """Without a guard, fit completes (the step is skipped) but the
        trajectory differs from clean — which is why the guard rewinds."""
        ids, trains = _fit_args(fleet_dataset)
        clean = MaceTrainer(fleet_config(epochs=2)).fit(ids, trains)
        poisoned = MaceTrainer(fleet_config(epochs=2))
        poisoned.fit(ids, trains, batch_hook=_nan_once(0, 0))
        diffs = [not np.array_equal(a, b) for (_, a), (__, b) in zip(
            sorted(clean.model.state_dict().items()),
            sorted(poisoned.model.state_dict().items()))]
        assert any(diffs)

    def test_nonfinite_events_survive_checkpoint_roundtrip(
            self, fleet_dataset, tmp_path):
        ids, trains = _fit_args(fleet_dataset)
        checkpointer = Checkpointer(tmp_path, keep=5)
        trainer = MaceTrainer(fleet_config(epochs=2))
        trainer.fit(ids, trains, checkpointer=checkpointer,
                    batch_hook=_nan_once(1, 0))
        resumed = MaceTrainer(fleet_config(epochs=2))
        resumed.fit(ids, trains, resume=checkpointer.latest())
        assert resumed.history.nonfinite_batches == [(1, 0)]


class TestGuardRewind:
    def test_nan_batch_rewound_to_bitwise_clean_state(self, fleet_dataset,
                                                      tmp_path):
        ids, trains = _fit_args(fleet_dataset)
        clean = MaceTrainer(fleet_config()).fit(ids, trains)

        checkpointer = Checkpointer(tmp_path, snapshot_initial=True, keep=5)
        guard = DivergenceGuard(checkpointer, max_rewinds=3)
        guarded = MaceTrainer(fleet_config())
        guarded.fit(ids, trains, checkpointer=checkpointer,
                    epoch_hook=guard, batch_hook=_nan_once(1, 0))

        assert guard.rewinds == 1
        event = guard.events[0]
        assert event.reason == "non-finite"
        assert event.epoch == 2 and event.rewound_to == 1
        expected = clean.model.state_dict()
        actual = guarded.model.state_dict()
        for name in expected:
            np.testing.assert_array_equal(actual[name], expected[name],
                                          err_msg=name)
        # The rewound history matches the clean run: the divergence left
        # no trace in the trajectory, only in the guard's event log.
        assert guarded.history.epoch_losses == clean.history.epoch_losses
        assert guarded.history.nonfinite_batches == []

    def test_first_epoch_divergence_uses_initial_snapshot(self, fleet_dataset,
                                                          tmp_path):
        ids, trains = _fit_args(fleet_dataset)
        checkpointer = Checkpointer(tmp_path, snapshot_initial=True, keep=5)
        guard = DivergenceGuard(checkpointer)
        trainer = MaceTrainer(fleet_config())
        trainer.fit(ids, trains, checkpointer=checkpointer,
                    epoch_hook=guard, batch_hook=_nan_once(0, 0))
        assert guard.rewinds == 1
        assert guard.events[0].rewound_to == 0
        clean = MaceTrainer(fleet_config()).fit(ids, trains)
        expected = clean.model.state_dict()
        actual = trainer.model.state_dict()
        for name in expected:
            np.testing.assert_array_equal(actual[name], expected[name],
                                          err_msg=name)

    def test_rewind_without_anchor_raises(self, fleet_dataset, tmp_path):
        ids, trains = _fit_args(fleet_dataset)
        checkpointer = Checkpointer(tmp_path, snapshot_initial=False, keep=5)
        guard = DivergenceGuard(checkpointer)
        trainer = MaceTrainer(fleet_config())
        with pytest.raises(DivergenceError, match="no checkpoint"):
            trainer.fit(ids, trains, checkpointer=checkpointer,
                        epoch_hook=guard, batch_hook=_nan_once(0, 0))

    def test_persistent_divergence_escalates_to_error(self, fleet_dataset,
                                                      tmp_path):
        ids, trains = _fit_args(fleet_dataset)
        checkpointer = Checkpointer(tmp_path, snapshot_initial=True, keep=5)
        guard = DivergenceGuard(checkpointer, max_rewinds=2)

        def always_nan(epoch, batch, loss):
            if epoch == 1 and batch == 0:
                return loss * float("nan")
            return None

        trainer = MaceTrainer(fleet_config())
        with pytest.raises(DivergenceError, match="after 2 rewind"):
            trainer.fit(ids, trains, checkpointer=checkpointer,
                        epoch_hook=guard, batch_hook=always_nan)
        assert guard.rewinds == 3  # two rewinds + the abandoning attempt

    def test_repeat_rewinds_halve_learning_rate(self, fleet_dataset,
                                                tmp_path):
        ids, trains = _fit_args(fleet_dataset)
        checkpointer = Checkpointer(tmp_path, snapshot_initial=True, keep=5)
        guard = DivergenceGuard(checkpointer, max_rewinds=3, lr_factor=0.5)

        fired = []

        def nan_twice(epoch, batch, loss):
            if epoch == 1 and batch == 0 and len(fired) < 2:
                fired.append(True)
                return loss * float("nan")
            return None

        trainer = MaceTrainer(fleet_config())
        trainer.fit(ids, trains, checkpointer=checkpointer,
                    epoch_hook=guard, batch_hook=nan_twice)
        assert guard.rewinds == 2
        base_lr = fleet_config().learning_rate
        # First rewind replays verbatim; the second halves the LR.
        assert guard.events[0].lr == pytest.approx(base_lr)
        assert guard.events[1].lr == pytest.approx(base_lr / 2)

    def test_spike_detection_triggers_rewind(self, fleet_dataset, tmp_path):
        ids, trains = _fit_args(fleet_dataset)
        checkpointer = Checkpointer(tmp_path, snapshot_initial=True, keep=8)
        guard = DivergenceGuard(checkpointer, spike_mads=6.0, min_history=3)

        fired = []

        def spike_once(epoch, batch, loss):
            # A finite but absurd loss: robust stats must flag it even
            # though no NaN is involved.
            if epoch == 4 and batch == 0 and not fired:
                fired.append(True)
                return loss * 1e9
            return None

        trainer = MaceTrainer(fleet_config(epochs=6))
        trainer.fit(ids, trains, checkpointer=checkpointer,
                    epoch_hook=guard, batch_hook=spike_once)
        assert guard.rewinds == 1
        assert guard.events[0].reason == "spike"
        assert guard.events[0].threshold is not None
        clean = MaceTrainer(fleet_config(epochs=6)).fit(ids, trains)
        assert trainer.history.epoch_losses == clean.history.epoch_losses

    def test_guard_parameter_validation(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        with pytest.raises(ValueError):
            DivergenceGuard(checkpointer, max_rewinds=0)
        with pytest.raises(ValueError):
            DivergenceGuard(checkpointer, lr_factor=0.0)
