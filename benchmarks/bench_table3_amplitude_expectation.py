"""Table III — expected amplitude: anomalies vs normal patterns.

Backs the paper's Assumption 1 (anomalies shift the spectrum upward in
expectation, Δ > 0), the premise of Theorem 2 / Corollary 1.
"""

from common import bench_dataset, run_once, save_results
from bench_table2_spectrum_variance import split_windows
from repro.eval import format_table
from repro.frequency import compare_anomaly_normal

PAPER_ROWS = {
    "smd": (0.36, 0.23),
    "j-d1": (0.74, 0.72),
    "j-d2": (0.81, 0.77),
}


def compute_table():
    rows = []
    measured = {}
    for name in ("smd", "j-d1", "j-d2"):
        anomalous, normal = split_windows(bench_dataset(name))
        stats = compare_anomaly_normal(anomalous, normal)
        measured[name] = {
            "anomaly_expectation": stats.anomaly_expectation,
            "normal_expectation": stats.normal_expectation,
        }
        rows.append((name, stats.anomaly_expectation, stats.normal_expectation,
                     PAPER_ROWS[name][0], PAPER_ROWS[name][1]))
    return rows, measured


def test_table3_amplitude_expectation(benchmark):
    rows, measured = run_once(benchmark, compute_table)
    print()
    print(format_table(
        ("dataset", "anomaly E[A]", "normal E[A]", "paper anomaly",
         "paper normal"),
        rows, title="Table III — amplitude expectation (measured vs paper)",
    ))
    save_results("table3", {"measured": measured, "paper": PAPER_ROWS})
    # Assumption 1: the anomaly shift has positive expectation.
    for name, anomaly_mean, normal_mean, *_ in rows:
        assert anomaly_mean > normal_mean, f"Δ <= 0 on {name}"
