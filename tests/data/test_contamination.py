"""Training-set contamination utility."""

import numpy as np
import pytest

from repro.data import contaminate_training, load_dataset


@pytest.fixture
def service():
    return load_dataset("smd", num_services=1, train_length=1024,
                        test_length=256)[0]


class TestContamination:
    def test_ratio_respected(self, service, rng):
        contaminated = contaminate_training(service, 0.05, rng=rng)
        assert contaminated.contamination_ratio == pytest.approx(0.05,
                                                                 abs=0.01)

    def test_original_untouched(self, service, rng):
        before = service.train.copy()
        contaminate_training(service, 0.05, rng=rng)
        np.testing.assert_array_equal(service.train, before)

    def test_labels_mark_modified_points(self, service, rng):
        contaminated = contaminate_training(service, 0.08, rng=rng)
        changed = np.any(contaminated.train != service.train, axis=1)
        # every modified point is labelled (labels may cover a superset
        # because some injections can coincide with original values)
        assert np.all(contaminated.train_labels[changed] == 1)

    def test_detector_trains_on_contaminated_data(self, service, rng):
        from repro.core import MaceConfig, MaceDetector

        contaminated = contaminate_training(service, 0.05, rng=rng)
        detector = MaceDetector(
            MaceConfig(epochs=1, train_stride=8, channels=4, num_bases=6)
        )
        detector.fit([service.service_id], [contaminated.train])
        scores = detector.score(service.service_id, service.test)
        assert np.isfinite(scores).all()
