"""Admission control for the serving gateway: token buckets + overload ladder.

Two layers decide whether a submitted point update may enter a shard
queue, and both answer with an explicit, retryable verdict rather than
unbounded buffering:

* **per-tenant token buckets** — every tenant (a group of services under
  one :class:`TenantPolicy`) spends one token per update and refills at
  its contracted rate.  A dry bucket means *throttled*, with the exact
  ``retry_after`` until the next token.
* **fleet-wide overload ladder** — aggregate queue occupancy drives a
  four-rung state machine.  Pressure sheds the cheapest thing first:
  NORMAL accepts everything; SHED_LOW rejects the lowest-priority
  tenants; DEGRADED keeps accepting but marks updates for the spectral
  fallback scorer (shed model cost, not data); REFUSE rejects all new
  work while queues drain.  Hysteresis keeps the ladder from flapping on
  the boundary.

The clock is injectable (``clock=lambda: ...``), so tests and the seeded
traffic generator can drive both layers on a virtual timeline and assert
exact verdict sequences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Optional, Tuple

__all__ = ["TenantPolicy", "TokenBucket", "AdmissionController",
           "OverloadState", "OverloadLadder"]


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission contract.

    ``rate`` tokens/second sustained, ``burst`` tokens of headroom, and a
    ``priority`` class (higher keeps flowing longer under overload; the
    ladder's SHED_LOW rung rejects the minimum priority present).
    """

    tenant: str
    rate: float = 1000.0
    burst: float = 100.0
    priority: int = 1

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.priority < 0:
            raise ValueError("priority must be >= 0")


class TokenBucket:
    """Classic token bucket against an injectable clock."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(now - self._updated, 0.0)
        self._updated = now
        self._tokens = min(self._tokens + elapsed * self.rate, self.burst)

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """Spend ``tokens`` if available.

        Returns ``(acquired, retry_after)`` — ``retry_after`` is 0 on
        success, else the seconds until the bucket will hold enough.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True, 0.0
        return False, (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class AdmissionController:
    """Per-tenant token buckets behind one ``admit`` call."""

    def __init__(self, policies: Dict[str, TenantPolicy],
                 clock: Callable[[], float] = time.monotonic):
        self.policies = dict(policies)
        self._buckets = {
            tenant: TokenBucket(policy.rate, policy.burst, clock)
            for tenant, policy in self.policies.items()
        }

    def admit(self, tenant: str) -> Tuple[bool, float]:
        """Spend one token for ``tenant``; unknown tenants are refused
        outright (a configuration error, not a transient)."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            raise KeyError(f"unknown tenant {tenant!r}; no admission policy")
        return bucket.try_acquire()

    def priority(self, tenant: str) -> int:
        return self.policies[tenant].priority

    def min_priority(self) -> int:
        """The lowest priority class present (what SHED_LOW rejects)."""
        if not self.policies:
            raise RuntimeError("no tenant policies configured")
        return min(policy.priority for policy in self.policies.values())


class OverloadState(Enum):
    """Ladder rung, in escalation order."""

    NORMAL = "normal"
    SHED_LOW = "shed_low"
    DEGRADED = "degraded"
    REFUSE = "refuse"


_LADDER = (OverloadState.NORMAL, OverloadState.SHED_LOW,
           OverloadState.DEGRADED, OverloadState.REFUSE)


class OverloadLadder:
    """Occupancy-driven overload state with hysteresis.

    ``observe(occupancy)`` (aggregate queue fill fraction in ``[0, 1]``)
    moves the ladder: upward immediately when occupancy crosses a rung's
    threshold, downward only after occupancy falls ``hysteresis`` below
    it — a queue hovering at the boundary must not flap between
    accepting and refusing.
    """

    def __init__(self, shed_at: float = 0.60, degrade_at: float = 0.80,
                 refuse_at: float = 0.95, hysteresis: float = 0.10):
        if not 0.0 < shed_at < degrade_at < refuse_at <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < shed_at < degrade_at "
                "< refuse_at <= 1"
            )
        if not 0.0 <= hysteresis < shed_at:
            raise ValueError("hysteresis must be in [0, shed_at)")
        self.thresholds = (shed_at, degrade_at, refuse_at)
        self.hysteresis = hysteresis
        self.state = OverloadState.NORMAL
        self.transitions = 0

    def observe(self, occupancy: float) -> OverloadState:
        """Update and return the ladder state for the given occupancy."""
        occupancy = max(0.0, min(float(occupancy), 1.0))
        target = 0
        for index, threshold in enumerate(self.thresholds):
            if occupancy >= threshold:
                target = index + 1
        current = _LADDER.index(self.state)
        if target < current:
            # Descend one rung at a time, and only once occupancy has
            # cleared the rung's threshold by the hysteresis margin.
            below = self.thresholds[current - 1] - self.hysteresis
            if occupancy < below:
                target = current - 1
            else:
                target = current
        if target != current:
            self.state = _LADDER[target]
            self.transitions += 1
        return self.state
