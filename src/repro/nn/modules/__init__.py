"""Neural-network layer modules."""

from repro.nn.modules.activations import GELU, LeakyReLU, ReLU, Sigmoid, Softplus, Tanh
from repro.nn.modules.attention import (
    AnomalyAttention,
    MultiheadSelfAttention,
    TransformerEncoderLayer,
)
from repro.nn.modules.base import Module
from repro.nn.modules.container import ModuleList, Sequential
from repro.nn.modules.conv import Conv1d, ConvTranspose1d
from repro.nn.modules.dropout import Dropout
from repro.nn.modules.linear import Bilinear, Linear
from repro.nn.modules.norm import BatchNorm1d, LayerNorm
from repro.nn.modules.positional import PositionalEncoding, sinusoidal_positions
from repro.nn.modules.recurrent import GRU, GRUCell, LSTMCell

__all__ = [
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "Bilinear",
    "Conv1d",
    "ConvTranspose1d",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "PositionalEncoding",
    "sinusoidal_positions",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "Softplus",
    "GRU",
    "GRUCell",
    "LSTMCell",
    "MultiheadSelfAttention",
    "AnomalyAttention",
    "TransformerEncoderLayer",
]
