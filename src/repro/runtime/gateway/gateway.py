"""The durable async serving gateway: WAL-backed sharded front door.

:class:`ServingGateway` is the fleet's single entry point for point
updates.  Service ids are consistent-hash-sharded onto a pool of scoring
worker processes (:mod:`repro.runtime.gateway.worker`), and every
accepted update is journalled to the shard's write-ahead log **before**
the submitter sees ``accepted`` — so the ack means *durable*, not merely
*enqueued*.  The rest of the machinery exists to keep that promise under
fire:

* **bounded queues, explicit backpressure** — each shard buffers at most
  ``queue_depth`` updates; a full queue rejects with ``retry_after``
  instead of buffering unboundedly.
* **admission control** — per-tenant token buckets and the fleet-wide
  overload ladder (:mod:`repro.runtime.gateway.admission`): shed the
  lowest-priority tenants first, degrade to the spectral fallback scorer
  next, refuse outright only at the top rung.
* **supervised workers, loss-free failover** — a worker that dies or
  stops acking is reaped (SIGTERM→SIGKILL), respawned with seeded
  exponential backoff, rebuilt from its last snapshot, and caught up by
  replaying the WAL; per-service sequence numbers make the replay (and
  the retransmit of the in-flight update) idempotent.  Chaos tests
  verify the recovered state bitwise against a fault-free run.
* **graceful drain** — shutdown stops admitting, drains every queue,
  snapshots and stops each worker.

Delivery to workers is stop-and-wait per shard: WAL order is admission
order is apply order, which is what makes recovery deterministic rather
than merely eventually-consistent.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.detector import AnomalyDetector
from repro.obs.events import EventLog
from repro.obs.metrics import get_registry
from repro.obs.propagate import TraceContext, TraceLog
from repro.runtime.faults import GatewayFault
from repro.runtime.gateway.admission import (
    AdmissionController,
    OverloadLadder,
    OverloadState,
    TenantPolicy,
)
from repro.runtime.gateway.hashring import ConsistentHashRing
from repro.runtime.gateway.wal import ENTRY_SCHEMA, WriteAheadLog, read_wal
from repro.runtime.gateway.worker import run_shard_worker

__all__ = ["GatewayError", "GatewayConfig", "SubmitResult", "ServingGateway"]

_DEFAULT_TENANT = "default"


class GatewayError(RuntimeError):
    """The gateway itself is broken (spawn failure, respawn budget
    exhausted) — distinct from per-update rejections, which are data."""


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway policy knobs (sharding, durability, backpressure)."""

    workers: int = 2
    seed: int = 0
    window: int = 40
    q: float = 1e-3
    replicas: int = 64              # hash-ring virtual nodes per worker
    queue_depth: int = 64           # per-shard bounded buffer
    segment_bytes: int = 256 * 1024  # WAL rotation size
    snapshot_every: int = 128       # worker snapshot cadence (applies)
    ack_timeout: float = 10.0       # per-update worker ack deadline
    spawn_timeout: float = 30.0     # worker hello deadline
    term_grace: float = 5.0         # SIGTERM→SIGKILL escalation window
    max_respawns: int = 5           # per shard, then GatewayError
    backoff_base: float = 0.05      # seconds; doubles per respawn
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.25    # +[0, jitter] fraction, seeded draw
    retry_after: float = 0.05       # suggested client backoff on reject
    shed_at: float = 0.60           # overload ladder thresholds
    degrade_at: float = 0.80
    refuse_at: float = 0.95
    hysteresis: float = 0.10
    start_method: Optional[str] = None  # None: "fork" if available
    trace_sample: float = 1.0       # deterministic trace sampling rate;
    #                               # 0 disables minting entirely

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.ack_timeout <= 0 or self.spawn_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_respawns < 1:
            raise ValueError("max_respawns must be >= 1")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")


@dataclass(frozen=True)
class SubmitResult:
    """Verdict for one submitted update — acceptance is durability."""

    accepted: bool
    service_id: str
    sequence: int
    reason: str                 # ok | duplicate | backpressure | throttled
    #                           # | shed | refused | draining | gap
    retry_after: float = 0.0    # seconds; meaningful when rejected
    degraded: bool = False      # accepted under the DEGRADED rung


class _WorkerDied(RuntimeError):
    """Internal: the shard worker died mid-conversation."""


@dataclass
class _Shard:
    """Parent-side bookkeeping for one shard."""

    shard_id: str
    services: Tuple[str, ...]
    wal: WriteAheadLog
    queue: asyncio.Queue
    snapshot_path: Path
    commit_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    process: Optional[multiprocessing.process.BaseProcess] = None
    conn: Optional[object] = None
    respawns: int = 0
    in_flight: bool = False
    slow_start: float = 0.0
    pending_die_after: Optional[int] = None
    dispatcher: Optional[asyncio.Task] = None


class ServingGateway:
    """Async multi-tenant front door over a pool of scoring workers.

    Parameters
    ----------
    directory:
        Root of the gateway run: per-shard WALs, snapshots, and the
        JSONL event log live here.
    detector:
        A fitted, **picklable** detector; every worker builds its own
        :class:`~repro.runtime.serving.ServingRuntime` around it.
    services:
        ``service_id -> calibration history`` for every served service.
    config:
        :class:`GatewayConfig` policy knobs.
    tenants / tenant_of:
        Admission policies and the service→tenant map.  Omitted, every
        service rides one permissive ``"default"`` tenant.
    """

    def __init__(self, directory: str | Path, detector: AnomalyDetector,
                 services: Dict[str, np.ndarray],
                 config: Optional[GatewayConfig] = None,
                 tenants: Optional[Dict[str, TenantPolicy]] = None,
                 tenant_of: Optional[Dict[str, str]] = None):
        if not services:
            raise ValueError("need at least one service")
        self.directory = Path(directory)
        self.detector = detector
        self.config = config if config is not None else GatewayConfig()
        self.services = {sid: np.atleast_2d(np.asarray(history, dtype=float))
                         for sid, history in services.items()}
        if tenants is None:
            tenants = {_DEFAULT_TENANT: TenantPolicy(
                _DEFAULT_TENANT, rate=1e6, burst=1e6)}
        self.tenant_of = dict(tenant_of or {})
        for sid in self.services:
            self.tenant_of.setdefault(sid, _DEFAULT_TENANT)
        unknown = sorted(set(self.tenant_of.values()) - set(tenants))
        if unknown:
            raise ValueError(f"services mapped to unknown tenants: {unknown}")
        self.admission = AdmissionController(tenants)
        self.ladder = OverloadLadder(
            shed_at=self.config.shed_at, degrade_at=self.config.degrade_at,
            refuse_at=self.config.refuse_at,
            hysteresis=self.config.hysteresis,
        )
        self.ring = ConsistentHashRing(
            [f"w{i}" for i in range(self.config.workers)],
            replicas=self.config.replicas, seed=self.config.seed,
        )
        method = self.config.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        self._context = multiprocessing.get_context(method)
        self._backoff_rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed & 0xFFFFFFFF, 0x6A7E])
        )
        self.registry = get_registry()
        self._events: Optional[EventLog] = None
        self._traces: Optional[TraceLog] = None
        self._shards: Dict[str, _Shard] = {}
        self._shard_of: Dict[str, str] = {}
        self._accepted_sequence: Dict[str, int] = {sid: 0
                                                   for sid in self.services}
        # Pre-start fault stash (applied to shards when start() builds
        # them): shard_id -> slow-start seconds / armed kill threshold.
        self._pre_slow_start: Dict[str, float] = {}
        self._pre_die_after: Dict[str, int] = {}
        self._draining = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Build shards, spawn + catch up every worker, start dispatch."""
        if self._started:
            raise GatewayError("gateway already started")
        self.directory.mkdir(parents=True, exist_ok=True)
        self._events = EventLog(self.directory / "events.jsonl")
        if self.config.trace_sample > 0.0:
            self._traces = TraceLog(self.directory / "spans.jsonl")
        assignment = self.ring.shards(sorted(self.services))
        self._shard_of = {sid: shard_id
                          for shard_id, sids in assignment.items()
                          for sid in sids}
        for shard_id in sorted(assignment):
            shard_dir = self.directory / shard_id
            self._shards[shard_id] = _Shard(
                shard_id=shard_id,
                services=assignment[shard_id],
                wal=WriteAheadLog(shard_dir / "wal",
                                  segment_bytes=self.config.segment_bytes),
                queue=asyncio.Queue(maxsize=self.config.queue_depth),
                snapshot_path=shard_dir / "snapshot.json",
                slow_start=self._pre_slow_start.get(shard_id, 0.0),
                pending_die_after=self._pre_die_after.get(shard_id),
            )
        spawns = [self._spawn_supervised(shard)
                  for shard in self._shards.values()]
        await asyncio.gather(*spawns)
        for shard in self._shards.values():
            shard.dispatcher = asyncio.ensure_future(self._dispatch(shard))
        self._started = True

    def apply_fault_plan(self, plan: Dict[str, GatewayFault]) -> None:
        """Install worker-side faults from a
        :meth:`~repro.runtime.faults.FaultInjector.plan_gateway_faults`
        schedule (call before :meth:`start`).

        ``worker_slow_start`` stalls every (re)spawn of the service's
        shard; the delivery kinds are executed client-side by the
        traffic generator and ignored here.
        """
        if self._started:
            raise GatewayError("install fault plans before start()")
        for service_id, fault in plan.items():
            if fault.kind != "worker_slow_start":
                continue
            shard_id = self.ring.assign(service_id)
            # Shards may not exist yet; stash on a pre-start map.
            self._pre_slow_start[shard_id] = max(
                self._pre_slow_start.get(shard_id, 0.0), fault.delay_seconds)

    def schedule_worker_kill(self, service_id: str, after_applies: int
                             ) -> str:
        """Arm a deterministic mid-traffic kill on the shard serving
        ``service_id``: the worker hard-exits after ``after_applies``
        applied updates, *after* applying and *before* acking.  Returns
        the shard id.  Call before :meth:`start`; the respawned worker
        runs clean."""
        if self._started:
            raise GatewayError("schedule kills before start()")
        shard_id = self.ring.assign(service_id)
        self._pre_die_after[shard_id] = int(after_applies)
        return shard_id

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, flush queues, snapshot and
        stop every worker."""
        self._require_started()
        self._draining = True
        self._emit("drain_start",
                   pending=sum(s.queue.qsize() for s in self._shards.values()))
        await self._quiesce()
        for shard in self._shards.values():
            if shard.dispatcher is not None:
                shard.dispatcher.cancel()
            if shard.process is None or not shard.process.is_alive():
                # A worker that died with an empty queue was never
                # respawned by dispatch; recover it so the final
                # snapshot reflects every acknowledged update.
                await self._failover(shard, "dead_at_drain")
            shard.conn.send({"op": "stop"})
            await self._await_reply(shard, ("bye",), self.config.ack_timeout)
            if shard.process is not None:
                shard.process.join(self.config.term_grace)
            self._reap_process(shard)
            shard.wal.close()
        self.registry.dump(self.directory / "metrics.jsonl")
        self._emit("drain_complete", shards=len(self._shards))
        if self._traces is not None:
            self._traces.close()
            self._traces = None
        self._events.close()
        self._started = False

    def close(self) -> None:
        """Hard shutdown (no drain): kill workers, close logs."""
        for shard in self._shards.values():
            if shard.dispatcher is not None:
                shard.dispatcher.cancel()
            self._terminate(shard)
            self._reap_process(shard)
            shard.wal.close()
        if self._traces is not None:
            self._traces.close()
            self._traces = None
        if self._events is not None:
            self._events.close()
            self._events = None
        self._started = False

    async def _quiesce(self) -> None:
        """Wait until every queue is empty and nothing is in flight."""
        while any(shard.queue.qsize() > 0 or shard.in_flight
                  for shard in self._shards.values()):
            await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    # Submission path (the ack protocol's front half)
    # ------------------------------------------------------------------
    async def submit(self, service_id: str, observation: np.ndarray,
                     sequence: int) -> SubmitResult:
        """Admit, journal, and enqueue one point update.

        ``sequence`` is the client's per-service monotonic update number
        (1-based, contiguous).  Re-submitting an already-accepted
        sequence (an at-least-once retry or duplicate) acks immediately
        without re-journalling — it is already durable.  A return with
        ``accepted=True`` means the update has been fsync'd into the
        shard's WAL and will survive any worker failure.
        """
        self._require_started()
        if service_id not in self.services:
            raise KeyError(f"unknown service {service_id!r}")
        if sequence < 1:
            raise ValueError("sequence must be >= 1")
        started = time.perf_counter()
        tenant = self.tenant_of[service_id]

        if self._draining:
            return self._reject(service_id, sequence, tenant, "draining")
        last = self._accepted_sequence[service_id]
        if sequence <= last:
            self.registry.counter("gateway.duplicates", tenant=tenant).inc()
            return SubmitResult(True, service_id, sequence, "duplicate")
        if sequence != last + 1:
            return self._reject(service_id, sequence, tenant, "gap",
                                retry_after=0.0)

        state = self._observe_ladder()
        if state is OverloadState.REFUSE:
            return self._reject(service_id, sequence, tenant, "refused")
        if state is OverloadState.SHED_LOW and self._sheddable(tenant):
            self.registry.counter("gateway.shed", tenant=tenant).inc()
            self._emit("tenant_shed", tenant=tenant, service=service_id)
            return self._reject(service_id, sequence, tenant, "shed")
        admitted, retry_after = self.admission.admit(tenant)
        if not admitted:
            return self._reject(service_id, sequence, tenant, "throttled",
                                retry_after=retry_after)

        shard = self._shards[self._shard_of[service_id]]
        if shard.queue.full():
            return self._reject(service_id, sequence, tenant, "backpressure")

        degraded = state is OverloadState.DEGRADED
        context = None
        if self.config.trace_sample > 0.0:
            context = TraceContext.mint(self.config.seed, service_id,
                                        sequence, self.config.trace_sample)
        entry = {
            "service": service_id,
            "sequence": sequence,
            "observation": np.asarray(observation,
                                      dtype=float).reshape(-1).tolist(),
            "degraded": degraded,
        }
        if context is not None:
            # WAL entry schema 2: the trace context rides the frame so a
            # post-failover replay re-parents under the original trace.
            # Schema-1 frames (pre-trace) simply lack both keys and
            # replay untraced.
            entry["schema"] = ENTRY_SCHEMA
            entry["trace"] = context.to_wire()
        lsn = shard.wal.append(entry)
        self.registry.counter("gateway.wal_appends",
                              shard=shard.shard_id).inc()
        await self._commit(shard, lsn)
        # The enqueue timestamp rides the queue, not the WAL: replayed
        # frames never waited in this queue, and journal bytes must not
        # depend on the wall clock.
        shard.queue.put_nowait((entry, time.perf_counter()))
        self._accepted_sequence[service_id] = sequence
        self.registry.counter("gateway.accepted", tenant=tenant).inc()
        if degraded:
            self.registry.counter("gateway.degraded_accepts").inc()
        self.registry.gauge("gateway.queue_depth",
                            shard=shard.shard_id).set(shard.queue.qsize())
        elapsed = time.perf_counter() - started
        exemplar = (context.trace_id
                    if context is not None and context.sampled else None)
        self.registry.histogram("gateway.ack_seconds").observe(
            elapsed, exemplar=exemplar)
        if context is not None and context.sampled \
                and self._traces is not None:
            self._traces.record("gateway.submit", context, elapsed,
                                service=service_id, sequence=sequence,
                                shard=shard.shard_id, degraded=degraded)
        # Nothing above suspends when the WAL lock is uncontended, so a
        # tight submit loop would monopolize the event loop and starve
        # the dispatchers into an ever-growing backlog.  One explicit
        # yield per accepted update keeps delivery interleaved with
        # admission (and lets queue occupancy mean what the ladder
        # thinks it means).
        await asyncio.sleep(0)
        return SubmitResult(True, service_id, sequence, "ok",
                            degraded=degraded)

    def _reject(self, service_id: str, sequence: int, tenant: str,
                reason: str, retry_after: Optional[float] = None
                ) -> SubmitResult:
        self.registry.counter("gateway.rejected", tenant=tenant,
                              reason=reason).inc()
        if retry_after is None:
            retry_after = self.config.retry_after
        return SubmitResult(False, service_id, sequence, reason,
                            retry_after=retry_after)

    async def _commit(self, shard: _Shard, lsn: int) -> None:
        """Group commit: coalesce concurrent submitters into one fsync."""
        if shard.wal.durable_lsn >= lsn:
            return
        async with shard.commit_lock:
            if shard.wal.durable_lsn < lsn:
                shard.wal.commit()

    def _observe_ladder(self) -> OverloadState:
        capacity = len(self._shards) * self.config.queue_depth
        occupancy = sum(shard.queue.qsize()
                        for shard in self._shards.values()) / capacity
        previous = self.ladder.state
        state = self.ladder.observe(occupancy)
        if state is not previous:
            self.registry.counter("gateway.overload_transitions",
                                  to_state=state.value).inc()
            self._emit("overload_transition", from_state=previous.value,
                       to_state=state.value, occupancy=occupancy)
        return state

    def _sheddable(self, tenant: str) -> bool:
        """Only the lowest priority class sheds, and only when a higher
        class exists to protect — with one class there is nothing
        'lower' to sacrifice and the ladder escalates instead."""
        priorities = {policy.priority
                      for policy in self.admission.policies.values()}
        if len(priorities) < 2:
            return False
        return self.admission.priority(tenant) == min(priorities)

    # ------------------------------------------------------------------
    # Dispatch path (the ack protocol's back half)
    # ------------------------------------------------------------------
    async def _dispatch(self, shard: _Shard) -> None:
        """Per-shard delivery loop: strict FIFO, stop-and-wait."""
        while True:
            try:
                entry, enqueued_at = shard.queue.get_nowait()
            except asyncio.QueueEmpty:
                await asyncio.sleep(0.001)
                continue
            context = TraceContext.from_wire(entry.get("trace"))
            self.registry.histogram(
                "gateway.queue_wait_seconds", shard=shard.shard_id,
            ).observe(time.perf_counter() - enqueued_at,
                      exemplar=(context.trace_id if context is not None
                                and context.sampled else None))
            shard.in_flight = True
            try:
                await self._deliver(shard, entry)
            finally:
                shard.in_flight = False
            self.registry.gauge("gateway.queue_depth",
                                shard=shard.shard_id).set(shard.queue.qsize())

    async def _deliver(self, shard: _Shard, entry: dict) -> dict:
        """Deliver one update, surviving any number of worker deaths.

        The entry is already durable in the WAL; this loop retransmits
        through failovers until the worker acks.  A retransmit that the
        dead worker had in fact applied is absorbed by the sequence
        check — the idempotence the whole protocol leans on.
        """
        command = dict(entry)
        command["op"] = "update"
        while True:
            if shard.process is None or not shard.process.is_alive():
                await self._failover(shard, "worker_dead")
            try:
                shard.conn.send(command)
            except (BrokenPipeError, OSError):
                await self._failover(shard, "pipe_broken")
                continue
            reply = await self._await_reply(shard, ("ack",),
                                            self.config.ack_timeout)
            if reply is None:
                await self._failover(shard, "ack_timeout")
                continue
            return reply

    async def _await_reply(self, shard: _Shard, ops: Tuple[str, ...],
                           timeout: float) -> Optional[dict]:
        """Await a matching reply; ``None`` on timeout or worker death."""
        deadline = time.monotonic() + timeout
        spins = 0
        while time.monotonic() < deadline:
            if shard.conn.poll(0):
                try:
                    reply = shard.conn.recv()
                except (EOFError, OSError):
                    return None
                if reply.get("op") in ops:
                    return reply
                continue            # stale reply from a previous regime
            if shard.process is not None and not shard.process.is_alive() \
                    and not shard.conn.poll(0):
                return None
            spins += 1
            await asyncio.sleep(0.0 if spins < 200 else 0.001)
        return None

    # ------------------------------------------------------------------
    # Supervision: spawn, reap, failover, replay
    # ------------------------------------------------------------------
    async def _spawn_supervised(self, shard: _Shard) -> None:
        """First spawn, with the same retry envelope as a failover."""
        try:
            await self._spawn(shard)
        except _WorkerDied:
            await self._failover(shard, "spawn_failed")

    async def _failover(self, shard: _Shard, reason: str) -> None:
        """Reap, back off, respawn, catch up — or give up loudly."""
        self.registry.counter("gateway.failovers", shard=shard.shard_id,
                              reason=reason).inc()
        self._emit("worker_failover", shard=shard.shard_id, reason=reason,
                   respawns=shard.respawns)
        while True:
            shard.respawns += 1
            if shard.respawns > self.config.max_respawns:
                raise GatewayError(
                    f"shard {shard.shard_id}: respawn budget "
                    f"({self.config.max_respawns}) exhausted after {reason}"
                )
            self._terminate(shard)
            await asyncio.sleep(self._backoff(shard.respawns))
            try:
                await self._spawn(shard)
                return
            except _WorkerDied:
                continue

    async def _spawn(self, shard: _Shard) -> None:
        """Spawn the shard worker, wait for hello, replay the WAL gap."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        payload = {
            "shard": shard.shard_id,
            "detector": self.detector,
            "window": self.config.window,
            "q": self.config.q,
            "services": {sid: self.services[sid].tolist()
                         for sid in shard.services},
            "snapshot_path": str(shard.snapshot_path),
            "snapshot_every": self.config.snapshot_every,
            "slow_start": shard.slow_start,
            "die_after_applies": shard.pending_die_after,
            "trace_path": (str(shard.snapshot_path.parent / "spans.jsonl")
                           if self.config.trace_sample > 0.0 else None),
            "incarnation": shard.respawns,
        }
        process = self._context.Process(
            target=run_shard_worker, args=(payload, child_conn),
            name=f"gateway-{shard.shard_id}-r{shard.respawns}", daemon=True,
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        # An armed deterministic kill fires in exactly one incarnation.
        shard.pending_die_after = None
        self._emit("worker_spawn", shard=shard.shard_id,
                   respawns=shard.respawns, slow_start=shard.slow_start)
        hello = await self._await_reply(
            shard, ("hello",),
            self.config.spawn_timeout + shard.slow_start)
        if hello is None:
            raise _WorkerDied(f"shard {shard.shard_id}: no hello")
        await self._replay(shard, hello["applied"])
        self._emit("worker_ready", shard=shard.shard_id,
                   applied=hello["applied"])

    async def _replay(self, shard: _Shard, applied: Dict[str, int]) -> None:
        """Catch a fresh worker up from its snapshot to the WAL head."""
        records = read_wal(shard.wal.directory)
        replayed = 0
        for record in records:
            entry = record.payload
            if entry["sequence"] <= applied.get(entry["service"], 0):
                continue
            command = dict(entry)
            command["op"] = "update"
            # Replayed frames carry their original trace context (WAL
            # entry schema 2); the worker marks the resulting span as a
            # replay so the trace tree tells recovery apart from the
            # first delivery.
            command["replay"] = True
            shard.conn.send(command)
            reply = await self._await_reply(shard, ("ack",),
                                            self.config.ack_timeout)
            if reply is None:
                raise _WorkerDied(
                    f"shard {shard.shard_id}: died during WAL replay"
                )
            replayed += 1
        if replayed:
            self.registry.counter("gateway.replayed_records",
                                  shard=shard.shard_id).inc(replayed)
        self._emit("wal_replay", shard=shard.shard_id, records=replayed,
                   wal_records=len(records))

    def _terminate(self, shard: _Shard) -> None:
        process = shard.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(self.config.term_grace)
            if process.is_alive():
                process.kill()
                process.join(self.config.term_grace)
        self._reap_process(shard)

    def _reap_process(self, shard: _Shard) -> None:
        if shard.process is not None:
            shard.process.join(self.config.term_grace)
            if not shard.process.is_alive():
                shard.process.close()
                shard.process = None
        if shard.conn is not None:
            shard.conn.close()
            shard.conn = None

    def _backoff(self, failed_attempts: int) -> float:
        delay = self.config.backoff_base * (2.0 ** (failed_attempts - 1))
        delay = min(delay, self.config.backoff_cap)
        jitter = self.config.backoff_jitter * float(self._backoff_rng.random())
        return delay * (1.0 + jitter)

    def kill_worker(self, shard_id: str) -> None:
        """SIGKILL a shard's worker (chaos hook); dispatch will fail over
        and recover from WAL on the next delivery."""
        shard = self._shards[shard_id]
        if shard.process is not None and shard.process.is_alive():
            shard.process.kill()

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------
    async def collect_states(self) -> Dict[str, dict]:
        """Quiesce, then fetch every worker's full serving state dict —
        the chaos suite's bitwise verification surface."""
        return {shard_id: reply["state"] for shard_id, reply
                in (await self._collect("state")).items()}

    async def collect_health(self) -> Dict[str, str]:
        """Quiesce, then fetch every service's worker-side health state
        (the >=90%-HEALTHY convergence gate's surface)."""
        health: Dict[str, str] = {}
        for reply in (await self._collect("state")).values():
            health.update(reply["health"])
        return health

    async def _collect(self, op: str) -> Dict[str, dict]:
        self._require_started()
        await self._quiesce()
        replies: Dict[str, dict] = {}
        for shard_id in sorted(self._shards):
            shard = self._shards[shard_id]
            if shard.process is None or not shard.process.is_alive():
                await self._failover(shard, "dead_at_collect")
            shard.conn.send({"op": op})
            reply = await self._await_reply(shard, (op,),
                                            self.config.ack_timeout)
            if reply is None:
                raise GatewayError(
                    f"shard {shard_id}: worker died during state collection"
                )
            replies[shard_id] = reply
        return replies

    def shard_of(self, service_id: str) -> str:
        """Which shard serves a service (stable across the gateway's
        lifetime; changes only with the worker pool)."""
        return self._shard_of[service_id]

    def accepted_sequence(self, service_id: str) -> int:
        """Last accepted (durable) sequence for a service."""
        return self._accepted_sequence[service_id]

    def status(self) -> dict:
        """One-glance gateway status (CLI / dashboards)."""
        return {
            "overload_state": self.ladder.state.value,
            "draining": self._draining,
            "shards": {
                shard_id: {
                    "services": len(shard.services),
                    "queue_depth": shard.queue.qsize(),
                    "respawns": shard.respawns,
                    "wal_lsn": shard.wal.next_lsn,
                    "alive": bool(shard.process is not None
                                  and shard.process.is_alive()),
                }
                for shard_id, shard in sorted(self._shards.items())
            },
        }

    def _require_started(self) -> None:
        if not self._started:
            raise GatewayError("gateway not started; call await start()")

    def _emit(self, kind: str, **fields) -> None:
        if self._events is not None:
            self._events.emit(kind, **fields)
