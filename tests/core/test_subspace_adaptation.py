"""Incremental subspace adaptation (pattern drift)."""

import numpy as np
import pytest

from repro.core import PatternExtractor


def _tone(length, period, rng, noise=0.05):
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / period)
            + noise * rng.normal(size=length))[:, None]


class TestUpdateService:
    def test_adapts_to_new_dominant_period(self, rng):
        extractor = PatternExtractor(window=40, num_bases=3)
        extractor.fit_service("svc", _tone(2000, 20.0, rng))  # bin 2
        assert 2 in extractor.subspace("svc").bases[0].indices
        # The service's pattern drifts to period 8 (bin 5); repeated
        # updates with strong decay must rotate the subspace.
        for _ in range(4):
            extractor.update_service("svc", _tone(1200, 8.0, rng), decay=0.3)
        assert 5 in extractor.subspace("svc").bases[0].indices

    def test_high_decay_preserves_old_pattern(self, rng):
        extractor = PatternExtractor(window=40, num_bases=3)
        extractor.fit_service("svc", _tone(4000, 20.0, rng))
        extractor.update_service("svc", _tone(200, 8.0, rng), decay=1.0)
        # one short burst of a new tone should not displace the old basis
        assert 2 in extractor.subspace("svc").bases[0].indices

    def test_update_unknown_service_falls_back_to_fit(self, rng):
        extractor = PatternExtractor(window=40, num_bases=3)
        subspace = extractor.update_service("new", _tone(800, 10.0, rng))
        assert "new" in extractor
        assert subspace.k == 3

    def test_update_invalidates_transform_cache(self, rng):
        extractor = PatternExtractor(window=40, num_bases=3)
        extractor.fit_service("svc", _tone(1000, 20.0, rng))
        first, _ = extractor.transforms("svc")
        extractor.update_service("svc", _tone(1000, 8.0, rng), decay=0.0)
        second, _ = extractor.transforms("svc")
        assert first is not second

    def test_invalid_decay(self, rng):
        extractor = PatternExtractor(window=40, num_bases=3)
        extractor.fit_service("svc", _tone(500, 20.0, rng))
        with pytest.raises(ValueError):
            extractor.update_service("svc", _tone(200, 8.0, rng), decay=1.5)

    def test_full_spectrum_mode_is_noop(self, rng):
        extractor = PatternExtractor(window=40, num_bases=3,
                                     context_aware=False)
        extractor.fit_service("svc", _tone(500, 20.0, rng))
        subspace = extractor.update_service("svc", _tone(200, 8.0, rng))
        assert subspace.k == 21  # still the full spectrum
