"""Functional ops: convolution values, pooling, losses, softmax."""

import numpy as np
import pytest

from repro.nn import Tensor, functional as F


def _naive_conv1d(x, w, b, stride, padding):
    n, c_in, length = x.shape
    c_out, _, kernel = w.shape
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
    out_len = (padded.shape[-1] - kernel) // stride + 1
    out = np.zeros((n, c_out, out_len))
    for i in range(n):
        for o in range(c_out):
            for t in range(out_len):
                patch = padded[i, :, t * stride:t * stride + kernel]
                out[i, o, t] = np.sum(patch * w[o]) + b[o]
    return out


class TestConv1d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (3, 2), (5, 0)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 15))
        w = rng.normal(size=(4, 3, 5))
        b = rng.normal(size=4)
        out = F.conv1d(Tensor(x), Tensor(w), Tensor(b), stride, padding)
        np.testing.assert_allclose(out.data,
                                   _naive_conv1d(x, w, b, stride, padding),
                                   atol=1e-12)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((3, 4))), Tensor(np.zeros((1, 1, 2))))

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((1, 1, 3))), Tensor(np.zeros((1, 1, 5))))


class TestConvTranspose1d:
    def test_inverts_conv_shape(self, rng):
        x = rng.normal(size=(2, 4, 6))
        w = rng.normal(size=(4, 3, 5))
        out = F.conv_transpose1d(Tensor(x), Tensor(w), stride=5)
        assert out.shape == (2, 3, 5 * 5 + 5)

    def test_adjoint_property(self, rng):
        """conv_transpose is the adjoint of conv: <conv(x), y> == <x, convT(y)>."""
        x = rng.normal(size=(1, 2, 12))
        w = rng.normal(size=(3, 2, 4))
        y = rng.normal(size=(1, 3, 5))  # conv output length (12-4)/2+1 = 5
        # conv weight (O, C, K) is already in conv_transpose's (C_in, C_out, K)
        # layout for the adjoint map (its C_in is conv's O).
        conv_x = F.conv1d(Tensor(x), Tensor(w), stride=2).data
        convt_y = F.conv_transpose1d(Tensor(y), Tensor(w), stride=2).data
        np.testing.assert_allclose(np.sum(conv_x * y), np.sum(x * convt_y),
                                   rtol=1e-10)


class TestPooling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(8.0)[None, None])
        out = F.avg_pool1d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [0.5, 2.5, 4.5, 6.5])

    def test_max_pool_values(self):
        x = Tensor(np.array([1.0, 3.0, 2.0, 5.0])[None, None])
        out = F.max_pool1d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [3.0, 5.0])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 9)) * 50))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_stable_for_large_inputs(self):
        out = F.softmax(Tensor(np.array([1000.0, 1000.0])))
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_log_softmax_consistent(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-12)


class TestLosses:
    def test_mse_reductions(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = rng.normal(size=(3, 4))
        full = (a.data - b) ** 2
        assert abs(F.mse_loss(a, b).item() - full.mean()) < 1e-12
        assert abs(F.mse_loss(a, b, "sum").item() - full.sum()) < 1e-12
        assert F.mse_loss(a, b, "none").shape == (3, 4)
        with pytest.raises(ValueError):
            F.mse_loss(a, b, "bogus")

    def test_l1(self, rng):
        a = Tensor(rng.normal(size=(5,)))
        b = rng.normal(size=(5,))
        assert abs(F.l1_loss(a, b).item() - np.abs(a.data - b).mean()) < 1e-12

    def test_huber_transitions(self):
        a = Tensor(np.array([0.1, 3.0]))
        b = np.zeros(2)
        loss = F.huber_loss(a, b, delta=1.0, reduction="none")
        np.testing.assert_allclose(loss.data, [0.005, 2.5])

    def test_bce_bounds_and_values(self):
        probs = Tensor(np.array([0.9, 0.1]))
        target = np.array([1.0, 0.0])
        expected = -np.log(np.array([0.9, 0.9])).mean()
        np.testing.assert_allclose(F.binary_cross_entropy(probs, target).item(),
                                   expected, rtol=1e-6)

    def test_kl_diag_gaussian_zero_at_standard_normal(self):
        mu = Tensor(np.zeros((3, 2)))
        logvar = Tensor(np.zeros((3, 2)))
        assert abs(F.kl_diag_gaussian(mu, logvar).item()) < 1e-12

    def test_gaussian_nll_minimised_at_mean(self, rng):
        target = rng.normal(size=(4,))
        at_mean = F.gaussian_nll(Tensor(target), Tensor(np.zeros(4)), target)
        off_mean = F.gaussian_nll(Tensor(target + 1), Tensor(np.zeros(4)), target)
        assert at_mean.item() < off_mean.item()


class TestDropoutFunction:
    def test_identity_when_not_training(self, rng):
        x = Tensor(np.ones(100))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, 1.0)

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.5, training=True, rng=rng)

    def test_expected_scale_preserved(self, rng):
        x = Tensor(np.ones(20000))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.05
