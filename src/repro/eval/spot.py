"""Streaming POT (SPOT) — online threshold maintenance.

The batch :mod:`repro.eval.pot` fits the tail once; production anomaly
detection (the paper's C2 setting: heavy traffic, real time) needs the
threshold to adapt as scores stream in.  ``Spot`` implements the streaming
algorithm of Siffer et al. (KDD 2017): calibrate on an initial batch, then
for each new score either flag it (above z_q), add it to the tail model
(between t and z_q, refit), or ignore it.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.eval.pot import PotFit, fit_pot

__all__ = ["Spot"]


class Spot:
    """Streaming peaks-over-threshold thresholder.

    Parameters
    ----------
    q:
        Target exceedance probability (alert rate) — e.g. ``1e-3``.
    level:
        Empirical quantile used for the initial threshold ``t``.
    refit_every:
        Refit the GPD tail after this many new excesses (refitting per
        point would be needlessly slow).
    """

    def __init__(self, q: float = 1e-3, level: float = 0.98,
                 refit_every: int = 16):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.level = level
        self.refit_every = refit_every
        self._fit: PotFit | None = None
        self._excesses: List[float] = []
        self._num_samples = 0
        self._pending = 0
        self.threshold: float = float("inf")

    @property
    def initialized(self) -> bool:
        return self._fit is not None

    def initialize(self, scores: np.ndarray) -> "Spot":
        """Calibrate on an initial batch of (mostly normal) scores."""
        scores = np.asarray(scores, dtype=float).reshape(-1)
        if not np.isfinite(scores).all():
            raise ValueError(
                "calibration scores contain non-finite values; sanitize the "
                "score stream before initializing SPOT"
            )
        self._fit = fit_pot(scores, level=self.level)
        self._excesses = list(
            scores[scores > self._fit.initial_threshold]
            - self._fit.initial_threshold
        )
        self._num_samples = scores.size
        self.threshold = self._fit.quantile(self.q)
        return self

    def step(self, score: float) -> bool:
        """Consume one score; return True when it is an alert.

        Alerts are *not* added to the tail model (they are assumed
        anomalous); sub-threshold excesses update the model.

        Non-finite scores are rejected: a single NaN appended to the excess
        set would poison every subsequent GPD refit (and therefore every
        future threshold), so the caller must sanitize or skip such scores.
        """
        if self._fit is None:
            raise RuntimeError("call initialize() before step()")
        if not math.isfinite(score):
            raise ValueError(
                f"non-finite score {score!r} passed to Spot.step(); a "
                "NaN/Inf excess would corrupt all future thresholds"
            )
        self._num_samples += 1
        if score > self.threshold:
            return True
        if score > self._fit.initial_threshold:
            self._excesses.append(score - self._fit.initial_threshold)
            self._pending += 1
            if self._pending >= self.refit_every:
                self._refit()
        return False

    def run(self, scores: np.ndarray) -> np.ndarray:
        """Vector convenience: boolean alert flags for a score stream."""
        return np.fromiter((self.step(float(s)) for s in np.asarray(scores)),
                           dtype=bool)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the full streaming state.

        Together with :meth:`from_state` this lets a serving process restart
        without re-running the (expensive) calibration pass.
        """
        fit = None
        if self._fit is not None:
            fit = {
                "initial_threshold": self._fit.initial_threshold,
                "shape": self._fit.shape,
                "scale": self._fit.scale,
                "num_excesses": self._fit.num_excesses,
                "num_samples": self._fit.num_samples,
            }
        return {
            "q": self.q,
            "level": self.level,
            "refit_every": self.refit_every,
            "fit": fit,
            "excesses": list(self._excesses),
            "num_samples": self._num_samples,
            "pending": self._pending,
            "threshold": self.threshold,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Spot":
        """Rebuild a :class:`Spot` from :meth:`state_dict` output."""
        spot = cls(q=state["q"], level=state["level"],
                   refit_every=state["refit_every"])
        if state["fit"] is not None:
            spot._fit = PotFit(**state["fit"])
        spot._excesses = [float(x) for x in state["excesses"]]
        spot._num_samples = int(state["num_samples"])
        spot._pending = int(state["pending"])
        spot.threshold = float(state["threshold"])
        return spot

    def _refit(self) -> None:
        from scipy.stats import genpareto

        excesses = np.asarray(self._excesses, dtype=float)
        shape, _, scale = genpareto.fit(excesses, floc=0.0)
        self._fit = PotFit(
            self._fit.initial_threshold, float(shape), float(scale),
            excesses.size, self._num_samples,
        )
        self.threshold = self._fit.quantile(self.q)
        self._pending = 0
