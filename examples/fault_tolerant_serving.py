"""Fault-tolerant serving: a MACE fleet survives bad telemetry and outages.

The serving loop of ``streaming_detection.py`` assumes every observation
is finite and every ``score`` call returns.  Real telemetry breaks both:
sensors emit NaN, samples get dropped, and the scoring path can fail
outright.  ``repro.runtime.ServingRuntime`` layers a sanitizer, a
per-service circuit breaker, and a spectral fallback scorer on top of the
streaming detector so the loop never raises and quarantined services
recover on their own.

This script trains a small fleet, then replays its test streams through a
seeded ``FaultInjector`` (corrupted observations plus a sustained scoring
outage on one service) and prints what the runtime did about it.

Run:  python examples/fault_tolerant_serving.py
"""

import numpy as np

from repro.core import MaceConfig, MaceDetector
from repro.data import load_dataset
from repro.runtime import BreakerConfig, FaultInjector, ServingRuntime
from repro.runtime.health import HealthState


def main() -> None:
    dataset = load_dataset("smd", num_services=3, train_length=768,
                           test_length=512, seed=7)
    ids = [s.service_id for s in dataset]

    detector = MaceDetector(MaceConfig(epochs=4))
    detector.fit(ids, [s.train for s in dataset])

    # Faults: 5% of observations corrupted (NaN / Inf / spike / drop) on
    # the first service, and a hard scoring outage on the second.
    injector = FaultInjector(seed=0, corrupt_prob=0.05)
    corrupted_id, outage_id = ids[0], ids[1]
    faulty = injector.wrap_detector(detector)

    runtime = ServingRuntime(
        faulty, window=40, q=5e-3,
        breaker_config=BreakerConfig(failure_threshold=3, base_backoff=8,
                                     max_backoff=128),
    )
    for service in dataset:
        runtime.start_service(service.service_id, service.train)
    print(f"serving {len(ids)} services; corrupting observations on "
          f"{corrupted_id}, outage on {outage_id} for steps 100-260\n")

    alerts = {service_id: 0 for service_id in ids}
    sanitized = 0
    fallback_steps = 0
    length = len(dataset[0].test)
    for step in range(length):
        faulty.fail_services = {outage_id} if 100 <= step < 260 else set()
        for service in dataset:
            observation = service.test[step]
            if service.service_id == corrupted_id:
                observation = injector.corrupt(observation)
            outcome = runtime.update(service.service_id, observation)
            alerts[service.service_id] += outcome.is_alert
            sanitized += outcome.sanitized
            fallback_steps += outcome.used_fallback

    print(f"{length} steps x {len(ids)} services, zero exceptions")
    print(f"observations corrupted: {injector.observations_corrupted}, "
          f"sanitized on ingest: {sanitized}")
    print(f"fallback-scored updates during the outage: {fallback_steps}\n")

    for service in dataset:
        health = runtime.health(service.service_id)
        trail = " -> ".join(
            f"{dst.value}@t{tick}" for tick, _, dst in health.transitions
        ) or "no transitions"
        print(f"{service.service_id}: final={health.state.value:12s} "
              f"alerts={alerts[service.service_id]:3d}  {trail}")

    assert runtime.health(outage_id).state is HealthState.HEALTHY, \
        "outage service should have been re-admitted by probes"
    buffers_finite = all(
        np.isfinite(runtime.streaming._streams[service_id].buffer).all()
        for service_id in ids
    )
    print(f"\nall ring buffers finite after the run: {buffers_finite}")


if __name__ == "__main__":
    main()
