"""Full-spectrum DFT helpers."""

import numpy as np
import pytest

from repro.frequency import (
    dominant_indices,
    irfft_signal,
    normalized_spectrum,
    power_spectrum,
    rfft_amplitude,
    rfft_coefficients,
)


def test_rfft_roundtrip(rng):
    x = rng.normal(size=(3, 20))
    np.testing.assert_allclose(irfft_signal(rfft_coefficients(x), 20), x,
                               atol=1e-10)


def test_amplitude_matches_abs(rng):
    x = rng.normal(size=17)
    np.testing.assert_allclose(rfft_amplitude(x), np.abs(np.fft.rfft(x)))


def test_power_is_square(rng):
    x = rng.normal(size=16)
    np.testing.assert_allclose(power_spectrum(x), rfft_amplitude(x) ** 2)


def test_dominant_indices_finds_tone():
    window = 32
    t = np.arange(window)
    x = np.sin(2 * np.pi * 4 * t / window) + 0.1 * np.sin(2 * np.pi * 9 * t / window)
    indices = dominant_indices(x, 2)
    assert 4 in indices and 9 in indices


def test_dominant_indices_skips_dc_by_default():
    x = np.ones(16) * 100.0
    indices = dominant_indices(x, 3)
    assert 0 not in indices


def test_dominant_indices_requires_1d(rng):
    with pytest.raises(ValueError):
        dominant_indices(rng.normal(size=(2, 8)), 2)


def test_normalized_spectrum_sums_to_one(rng):
    q = normalized_spectrum(rng.normal(size=(4, 30)))
    np.testing.assert_allclose(q.sum(axis=-1), 1.0, atol=1e-9)
    assert np.all(q >= 0)
