"""Quickstart: detect anomalies in one service with MACE.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import MaceConfig, MaceDetector
from repro.data import load_dataset
from repro.eval import best_f1_threshold, detection_metrics, pot_threshold


def main() -> None:
    # 1. Get data: a synthetic SMD-like service (train split is anomaly-free,
    #    test split carries labelled injected anomalies).
    dataset = load_dataset("smd", num_services=2, train_length=1024,
                           test_length=1024)
    service = dataset[0]
    print(f"service {service.service_id}: train {service.train.shape}, "
          f"test {service.test.shape}, "
          f"anomaly ratio {service.anomaly_ratio:.1%}")

    # 2. Fit MACE.  One detector can serve many services; here we give it
    #    both so the unified model covers two normal patterns.
    detector = MaceDetector(MaceConfig(epochs=5))
    detector.fit([s.service_id for s in dataset],
                 [s.train for s in dataset])
    print(f"trained: {detector.num_parameters()} parameters, "
          f"final loss {detector.history.final_loss:.4f}")

    # 3. Score the test split: one anomaly score per timestamp.
    scores = detector.score(service.service_id, service.test)

    # 4. Threshold.  POT (extreme value theory) is the deployment-style
    #    rule; the best-F1 sweep is the evaluation convention of the paper.
    threshold = pot_threshold(scores, q=1e-2)
    predictions = scores > threshold
    print(f"POT threshold {threshold:.3f} flags {predictions.sum()} points")
    pot_metrics = detection_metrics(scores, service.test_labels, threshold)
    print(f"POT:     precision {pot_metrics.precision:.3f} "
          f"recall {pot_metrics.recall:.3f} F1 {pot_metrics.f1:.3f}")

    best = best_f1_threshold(scores, service.test_labels)
    print(f"best-F1: precision {best.metrics.precision:.3f} "
          f"recall {best.metrics.recall:.3f} F1 {best.metrics.f1:.3f}")

    # 5. Inspect the top anomaly.
    top = int(np.argmax(scores))
    print(f"strongest anomaly at t={top} "
          f"(label={'anomalous' if service.test_labels[top] else 'normal'})")


if __name__ == "__main__":
    main()
