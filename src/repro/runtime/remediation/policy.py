"""Remediation policy: when is the controller *allowed* to act?

Automated remediation is only safe inside guardrails.  The policy engine
answers one question per incident per tick — "may I run this action now?"
— under four constraints:

* **per-service cooldown** — at least ``cooldown_ticks`` between action
  starts on the same service, so a failing remedy cannot be machine-gunned
  at a service faster than its effects can be observed;
* **blast radius** — at most ``max_concurrent_actions`` actions in flight
  fleet-wide, so a correlated outage (bad deploy, poisoned upstream) can
  never trigger a fleet-wide simultaneous mutation;
* **flapping suppression** — a service whose health has transitioned more
  than ``flap_threshold`` times inside ``flap_window`` ticks is *not*
  re-remediated; the ladder jumps straight to its terminal rung
  (quarantine and page) because oscillation means the automated remedies
  are not holding;
* **escalation ladder** — each diagnosis maps to an ordered tuple of
  action names; every failed/rolled-back attempt moves one rung up, and
  the last rung is always the terminal human hand-off.

The engine also keeps an invariant self-audit: every grant re-checks the
cooldown and blast-radius predicates and counts any breach in
``violations``.  The drill suite asserts this counter is zero — a nonzero
value is a bug in the engine, never an acceptable outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

from repro.runtime.remediation.diagnosis import AlertClass

__all__ = ["PolicyConfig", "PolicyDecision", "PolicyEngine",
           "TERMINAL_ACTION", "DEFAULT_LADDERS"]

TERMINAL_ACTION = "quarantine_and_page"

# Root cause -> ordered remedies.  Every ladder ends on the terminal
# human hand-off; PolicyConfig.__post_init__ enforces it.
DEFAULT_LADDERS: Dict[AlertClass, Tuple[str, ...]] = {
    AlertClass.DATA_QUALITY: (
        "recalibrate_sanitizer", "reset_breaker", TERMINAL_ACTION),
    AlertClass.MODEL_STALENESS: (
        "hot_swap_detector", "reset_breaker", TERMINAL_ACTION),
    AlertClass.ANOMALY_STORM: (
        "reset_breaker", TERMINAL_ACTION),
    AlertClass.UNKNOWN: (
        "reset_breaker", "recalibrate_sanitizer", "hot_swap_detector",
        TERMINAL_ACTION),
}


@dataclass(frozen=True)
class PolicyConfig:
    """Guardrail thresholds and the per-diagnosis escalation ladders."""

    cooldown_ticks: int = 24
    max_concurrent_actions: int = 2
    flap_window: int = 120
    flap_threshold: int = 8
    ladders: Mapping[AlertClass, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LADDERS))

    def __post_init__(self):
        if self.cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be >= 1")
        if self.max_concurrent_actions < 1:
            raise ValueError("max_concurrent_actions must be >= 1")
        if self.flap_window < 1 or self.flap_threshold < 1:
            raise ValueError("flap window/threshold must be >= 1")
        for alert_class, ladder in self.ladders.items():
            if not ladder or ladder[-1] != TERMINAL_ACTION:
                raise ValueError(
                    f"ladder for {alert_class} must end on "
                    f"{TERMINAL_ACTION!r}; got {ladder!r}"
                )

    def ladder(self, alert_class: AlertClass) -> Tuple[str, ...]:
        return tuple(self.ladders.get(alert_class,
                                      DEFAULT_LADDERS[AlertClass.UNKNOWN]))


@dataclass(frozen=True)
class PolicyDecision:
    """One grant/deferral/escalation verdict."""

    allowed: bool
    action: Optional[str]     # action name when allowed
    reason: str
    escalate: bool = False    # jump to the terminal rung (flapping)

    def to_payload(self) -> dict:
        return {"allowed": self.allowed, "action": self.action,
                "reason": self.reason, "escalate": self.escalate}


class PolicyEngine:
    """Stateful guardrail keeper for the remediation controller.

    The controller calls :meth:`decide` when it wants to launch a rung,
    :meth:`acquire` when the runner accepts the action, and
    :meth:`release` when the action leaves flight (done, failed, or timed
    out).  Decisions are deterministic functions of tick state, so a
    seeded drill replays bit-for-bit.
    """

    def __init__(self, config: PolicyConfig | None = None):
        self.config = config or PolicyConfig()
        self._last_action_tick: Dict[str, int] = {}
        self._in_flight: Set[str] = set()
        self.decisions = 0
        self.deferrals = 0
        self.violations = 0

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def decide(self, service_id: str, tick: int, alert_class: AlertClass,
               rung: int, recent_transitions: int) -> PolicyDecision:
        """May the controller start ladder rung ``rung`` now?

        ``recent_transitions`` is the service's transition count inside
        the flap window (:meth:`ServiceHealth.transitions_in_window`).
        """
        self.decisions += 1
        ladder = self.config.ladder(alert_class)
        flapping = recent_transitions > self.config.flap_threshold
        if flapping and rung < len(ladder) - 1:
            # Oscillating service: stop iterating remedies, hand off.
            return PolicyDecision(
                allowed=self._admit(service_id, tick),
                action=TERMINAL_ACTION,
                reason=(f"flapping: {recent_transitions} transitions in "
                        f"the last {self.config.flap_window} ticks "
                        f"(> {self.config.flap_threshold}); escalating"),
                escalate=True,
            )
        if rung >= len(ladder):
            # Ladder exhausted — the terminal rung already ran.
            return PolicyDecision(False, None,
                                  "escalation ladder exhausted")
        action = ladder[rung]
        last = self._last_action_tick.get(service_id)
        if (action != TERMINAL_ACTION and last is not None
                and tick - last < self.config.cooldown_ticks):
            self.deferrals += 1
            return PolicyDecision(
                False, None,
                f"cooldown: last action at tick {last}, "
                f"{self.config.cooldown_ticks - (tick - last)} tick(s) "
                "remaining")
        if not self._admit(service_id, tick):
            self.deferrals += 1
            return PolicyDecision(
                False, None,
                f"blast radius: {self.in_flight} action(s) already in "
                f"flight (cap {self.config.max_concurrent_actions})")
        return PolicyDecision(True, action, f"ladder rung {rung}")

    def _admit(self, service_id: str, tick: int) -> bool:
        """Blast-radius admission; terminal escalations also respect it."""
        return (service_id in self._in_flight
                or self.in_flight < self.config.max_concurrent_actions)

    def acquire(self, service_id: str, tick: int) -> None:
        """Record an action start; self-audits the guardrail invariants."""
        if service_id not in self._in_flight:
            if self.in_flight >= self.config.max_concurrent_actions:
                self.violations += 1
            self._in_flight.add(service_id)
        self._last_action_tick[service_id] = tick

    def release(self, service_id: str) -> None:
        self._in_flight.discard(service_id)

    def stats(self) -> dict:
        return {
            "decisions": self.decisions,
            "deferrals": self.deferrals,
            "violations": self.violations,
            "in_flight": self.in_flight,
        }
