"""AnomalyTransformer-lite (Xu et al., ICLR 2022).

Keeps the defining idea — *association discrepancy* between the learned
series association (softmax attention) and a learnable-width Gaussian prior
association — with a single attention block and the minimax schedule
collapsed into one combined objective.  The anomaly criterion is the
paper's: reconstruction error re-weighted by ``softmax(-AssDis)``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spec import TensorSpec, child_contract
from repro.baselines.base import BaselineConfig, NeuralWindowDetector
from repro.nn import functional as F
from repro.nn.modules.attention import AnomalyAttention
from repro.nn.modules.base import Module
from repro.nn.modules.linear import Linear
from repro.nn.tensor import Tensor

__all__ = ["association_discrepancy", "AnomalyTransformerModel",
           "AnomalyTransformerDetector"]


def association_discrepancy(series: np.ndarray, prior: np.ndarray,
                            eps: float = 1e-8) -> np.ndarray:
    """Symmetric KL between series and prior association rows.

    Inputs are ``(B, H, T, T)`` attention maps; output is ``(B, T)``
    averaged over heads.
    """
    series = np.maximum(series, eps)
    prior = np.maximum(prior, eps)
    kl_sp = np.sum(series * np.log(series / prior), axis=-1)
    kl_ps = np.sum(prior * np.log(prior / series), axis=-1)
    return (kl_sp + kl_ps).mean(axis=1)


class AnomalyTransformerModel(Module):
    """Embedding → anomaly attention → reconstruction head."""

    def __init__(self, num_features: int, dim: int = 16, heads: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.embed = Linear(num_features, dim, rng=rng)
        self.attention = AnomalyAttention(dim, heads, rng=rng)
        self.head = Linear(dim, num_features, rng=rng)

    def forward(self, windows: Tensor):
        embedded = self.embed(windows)
        attended, series_assoc, prior_assoc = self.attention(embedded)
        reconstruction = self.head(attended)
        return reconstruction, series_assoc, prior_assoc

    def contract(self, spec: TensorSpec):
        spec.require_ndim(3, "AnomalyTransformerModel")
        embedded = child_contract("embed", self.embed, spec)
        attended, series, prior = child_contract(
            "attention", self.attention, embedded
        )
        reconstruction = child_contract("head", self.head, attended)
        return reconstruction, series, prior


class AnomalyTransformerDetector(NeuralWindowDetector):
    """AnomalyTransformer-lite on the shared detector API."""

    name = "AnomalyTransformer"

    def __init__(self, config: BaselineConfig | None = None, dim: int = 16,
                 heads: int = 4, discrepancy_weight: float = 0.1):
        super().__init__(config)
        self.dim = dim
        self.heads = heads
        self.discrepancy_weight = discrepancy_weight

    def build_model(self, num_features: int) -> Module:
        return AnomalyTransformerModel(num_features, self.dim, self.heads,
                                       rng=self.rng)

    def model_loss(self, model: Module, windows: Tensor,
                   service_id: str) -> Tensor:
        reconstruction, series_assoc, prior_assoc = model(windows)
        recon = F.mse_loss(reconstruction, windows)
        # Minimax as alternating stop-gradients in one objective: the push
        # term moves the series association away from a frozen prior, the
        # pull term moves the prior (through sigma_proj) toward a frozen
        # series association.  Detaching the prior in *both* terms would
        # leave sigma_proj with no gradient path at all.
        eps = 1e-8
        series_safe = series_assoc.clip(eps, 1.0)
        prior_safe = prior_assoc.clip(eps, 1.0)
        prior_const = Tensor(prior_safe.data)
        series_const = Tensor(series_safe.data)
        push = (
            series_safe * (series_safe.log() - prior_const.log())
        ).sum(axis=-1).mean()
        pull = (
            series_const * (series_const.log() - prior_safe.log())
        ).sum(axis=-1).mean()
        return recon - self.discrepancy_weight * (push - pull)

    def window_errors(self, model: Module, windows: np.ndarray,
                      service_id: str) -> np.ndarray:
        reconstruction, series_assoc, prior_assoc = model(Tensor(windows))
        recon_error = ((reconstruction.data - windows) ** 2).mean(axis=-1)
        discrepancy = association_discrepancy(series_assoc.data, prior_assoc.data)
        # Paper's criterion: softmax(-AssDis) over the window scales the
        # reconstruction error.
        shifted = -discrepancy
        shifted = shifted - shifted.max(axis=1, keepdims=True)
        weights = np.exp(shifted)
        weights = weights / weights.sum(axis=1, keepdims=True)
        return weights * recon_error * windows.shape[1]
