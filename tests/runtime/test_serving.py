"""ServingRuntime unit behaviour: routing, degradation, fallback scoring."""

import numpy as np
import pytest

from repro.core.detector import AnomalyDetector
from repro.runtime import (
    BreakerConfig,
    SanitizerConfig,
    ServingRuntime,
    SpectralFallbackScorer,
)
from repro.runtime.health import HealthState


class ScriptedDetector(AnomalyDetector):
    """Cheap z-score detector whose scoring path can be forced to fail."""

    name = "scripted"

    def __init__(self):
        self._stats = {}
        self.fail = False
        self.emit_nan = False

    def fit(self, service_ids, train_series):
        for service_id, series in zip(service_ids, train_series):
            series = np.atleast_2d(np.asarray(series, dtype=float))
            self._stats[service_id] = (series.mean(axis=0),
                                       series.std(axis=0) + 1e-9)
        return self

    def score(self, service_id, series):
        if self.fail:
            raise RuntimeError("scripted scoring failure")
        mean, std = self._stats[service_id]
        series = np.atleast_2d(np.asarray(series, dtype=float))
        scores = np.abs((series - mean) / std).max(axis=1)
        if self.emit_nan:
            scores = scores.copy()
            scores[-1] = np.nan
        return scores


def _history(seed=0, length=240, features=2):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.stack([np.sin(2 * np.pi * t / 20) + 0.1 * rng.normal(size=length)
                     for _ in range(features)], axis=1)
    return base


@pytest.fixture
def runtime():
    history = _history()
    detector = ScriptedDetector().fit(["svc"], [history])
    runtime = ServingRuntime(
        detector, window=40, q=1e-2,
        breaker_config=BreakerConfig(failure_threshold=3,
                                     recovery_successes=2,
                                     probe_successes=1, base_backoff=4,
                                     max_backoff=32),
    )
    runtime.start_service("svc", history)
    return runtime


def _detector(runtime):
    return runtime.streaming.detector


class TestHappyPath:
    def test_clean_updates_stay_healthy(self, runtime):
        for row in _history(seed=1)[:50]:
            outcome = runtime.update("svc", row)
            assert outcome.ready
            assert outcome.health == "healthy"
            assert not outcome.used_fallback
        assert runtime.health("svc").state is HealthState.HEALTHY

    def test_unknown_service_still_raises(self, runtime):
        with pytest.raises(KeyError):
            runtime.update("nope", np.zeros(2))

    def test_feature_mismatch_still_raises(self, runtime):
        with pytest.raises(ValueError):
            runtime.update("svc", np.zeros(7))


class TestSanitizedInputs:
    def test_nan_observation_reported_not_fatal(self, runtime):
        outcome = runtime.update("svc", np.array([np.nan, 0.0]))
        assert outcome.imputed_features == (0,)
        assert outcome.sanitized
        assert np.isfinite(outcome.score)

    def test_dropped_sample_accepted(self, runtime):
        outcome = runtime.update("svc", None)
        assert outcome.imputed_features == (0, 1)
        assert np.isfinite(outcome.score)

    def test_gross_outlier_clipped(self, runtime):
        outcome = runtime.update("svc", np.array([1e9, 0.0]))
        assert outcome.clipped_features == (0,)

    def test_long_gap_degrades(self):
        history = _history()
        detector = ScriptedDetector().fit(["svc"], [history])
        runtime = ServingRuntime(
            detector, window=40, q=1e-2,
            sanitizer_config=SanitizerConfig(max_consecutive_imputed=3),
        )
        runtime.start_service("svc", history)
        for _ in range(5):
            outcome = runtime.update("svc", None)
        assert outcome.health == "degraded"

    def test_dirty_calibration_history_accepted(self):
        history = _history()
        history[10:14, 1] = np.nan
        history[50, 0] = np.inf
        detector = ScriptedDetector().fit(
            ["svc"], [np.nan_to_num(history, posinf=0.0, neginf=0.0)]
        )
        runtime = ServingRuntime(detector, window=40, q=1e-2)
        runtime.start_service("svc", history)
        assert runtime.update("svc", np.zeros(2)).ready


class TestDegradedMode:
    def test_scoring_failures_never_surface(self, runtime):
        _detector(runtime).fail = True
        for row in _history(seed=2)[:20]:
            outcome = runtime.update("svc", row)   # must not raise
            assert outcome.ready
            assert np.isfinite(outcome.score)

    def test_breaker_trips_to_quarantine(self, runtime):
        _detector(runtime).fail = True
        outcomes = [runtime.update("svc", row)
                    for row in _history(seed=2)[:10]]
        assert outcomes[-1].health == "quarantined"
        assert outcomes[-1].used_fallback
        assert runtime.health("svc").state is HealthState.QUARANTINED

    def test_nan_scores_trip_breaker_too(self, runtime):
        _detector(runtime).emit_nan = True
        outcomes = [runtime.update("svc", row)
                    for row in _history(seed=3)[:10]]
        assert runtime.health("svc").state is HealthState.QUARANTINED
        assert all(np.isfinite(o.score) for o in outcomes)

    def test_fallback_threshold_reported(self, runtime):
        _detector(runtime).fail = True
        for row in _history(seed=2)[:10]:
            outcome = runtime.update("svc", row)
        fallback = runtime._fallbacks["svc"]
        assert outcome.threshold == fallback.threshold

    def test_probes_readmit_after_recovery(self, runtime):
        detector = _detector(runtime)
        detector.fail = True
        rows = _history(seed=4)
        for row in rows[:12]:
            runtime.update("svc", row)
        assert runtime.health("svc").state is HealthState.QUARANTINED
        detector.fail = False
        last = None
        for row in rows[12:80]:
            last = runtime.update("svc", row)
        assert runtime.health("svc").state is HealthState.HEALTHY
        assert not last.used_fallback

    def test_fleet_isolation(self):
        """One broken service must not affect its neighbour's path."""
        history_a, history_b = _history(seed=5), _history(seed=6)

        class HalfBroken(ScriptedDetector):
            live = False    # healthy during calibration, breaks after

            def score(self, service_id, series):
                if self.live and service_id == "bad":
                    raise RuntimeError("dead service")
                return super().score(service_id, series)

        detector = HalfBroken().fit(["good", "bad"],
                                    [history_a, history_b])
        runtime = ServingRuntime(detector, window=40, q=1e-2)
        runtime.start_service("good", history_a)
        runtime.start_service("bad", history_b)
        detector.live = True
        for row_a, row_b in zip(_history(seed=7)[:40], _history(seed=8)[:40]):
            good = runtime.update("good", row_a)
            bad = runtime.update("bad", row_b)
        assert good.health == "healthy" and not good.used_fallback
        assert bad.health == "quarantined" and bad.used_fallback


class TestSpectralFallback:
    def test_calibration_scores_below_threshold(self):
        history = _history(seed=9)
        scorer = SpectralFallbackScorer(window=40).fit(history)
        window = history[-40:]
        assert scorer.score(window) <= scorer.threshold * 1.01

    def test_spectral_shift_scores_higher(self):
        history = _history(seed=10)
        scorer = SpectralFallbackScorer(window=40).fit(history)
        normal = scorer.score(history[-40:])
        shifted = history[-40:].copy()
        t = np.arange(40)
        shifted[:, 0] = np.sin(2 * np.pi * t / 3)   # very different period
        assert scorer.score(shifted) > normal

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            SpectralFallbackScorer(window=40).score(np.zeros((40, 2)))

    def test_short_history_rejected(self):
        with pytest.raises(ValueError):
            SpectralFallbackScorer(window=40).fit(np.zeros((60, 2)))


class TestServingTelemetry:
    """Latency histograms + health-transition counters/events."""

    def _fresh_runtime(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        history = _history()
        detector = ScriptedDetector().fit(["svc"], [history])
        runtime = ServingRuntime(
            detector, window=40, q=1e-2, registry=registry,
            breaker_config=BreakerConfig(failure_threshold=3,
                                         recovery_successes=2,
                                         probe_successes=1, base_backoff=4,
                                         max_backoff=32),
        )
        runtime.start_service("svc", history)
        return runtime, registry

    def test_every_update_lands_in_latency_histogram(self):
        runtime, registry = self._fresh_runtime()
        for row in _history(seed=1)[:25]:
            runtime.update("svc", row)
        histogram = registry.get("serving.update_seconds", service="svc")
        assert histogram.count == 25
        assert histogram.total > 0.0
        assert histogram.quantile(0.5) > 0.0

    def test_transition_counters_and_events(self):
        from repro.obs.events import EventLog, install_event_log

        runtime, registry = self._fresh_runtime()
        log = EventLog()
        previous = install_event_log(log)
        try:
            _detector(runtime).fail = True
            for row in _history(seed=2)[:10]:
                runtime.update("svc", row)
        finally:
            install_event_log(previous)
        assert runtime.health("svc").state is HealthState.QUARANTINED
        trips = registry.get("serving.breaker_trips", service="svc")
        assert trips is not None and trips.value >= 1
        transitions = registry.collect("serving.health_transitions")
        assert sum(c.value for c in transitions) == \
            len(runtime.health("svc").transitions)
        kinds = [e["kind"] for e in log.events()]
        assert "health_transition" in kinds
        assert "breaker_trip" in kinds
        trip = log.events("breaker_trip")[0]
        assert trip["service"] == "svc"
        assert trip["failures"] >= 3

    def test_health_states_default_shape_unchanged(self):
        runtime, _ = self._fresh_runtime()
        runtime.update("svc", _history(seed=3)[0])
        states = runtime.health_states()
        assert states == {"svc": HealthState.HEALTHY}

    def test_health_states_detail_view(self):
        runtime, _ = self._fresh_runtime()
        for row in _history(seed=4)[:10]:
            runtime.update("svc", row)
        detail = runtime.health_states(detail=True)["svc"]
        assert detail["state"] is HealthState.HEALTHY
        assert detail["updates"] == 10
        assert detail["update_seconds"]["mean"] > 0.0
        assert detail["update_seconds"]["p99"] >= detail["update_seconds"]["p50"]
        assert detail["update_seconds"]["max"] >= detail["update_seconds"]["p99"]
        assert detail["transitions"] == 0

    def test_failed_update_still_counted(self):
        """The latency histogram records even quarantined/fallback paths."""
        runtime, registry = self._fresh_runtime()
        _detector(runtime).fail = True
        for row in _history(seed=5)[:12]:
            runtime.update("svc", row)
        histogram = registry.get("serving.update_seconds", service="svc")
        assert histogram.count == 12
