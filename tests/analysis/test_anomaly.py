"""detect_anomaly(): op-level NaN/Inf attribution in forward and backward."""

import numpy as np
import pytest

from repro.analysis import AnomalyError, detect_anomaly
from repro.nn import autograd
from repro.nn.tensor import Tensor


class TestForward:
    def test_names_the_introducing_op(self):
        a = Tensor(np.array([0.5, -0.5]), requires_grad=True)
        with detect_anomaly():
            with pytest.raises(AnomalyError) as excinfo:
                with np.errstate(all="ignore"):
                    ((a - 1.0).log() * 2.0).sum()
        message = str(excinfo.value)
        assert "op 'log'" in message
        assert "NaN" in message
        # Provenance: the parent op and its finite status are reported.
        assert "op='sub'" in message
        assert "values finite" in message

    def test_counts_nan_and_inf_separately(self):
        a = Tensor(np.array([0.0, -1.0]), requires_grad=True)
        with detect_anomaly():
            with pytest.raises(AnomalyError) as excinfo:
                with np.errstate(all="ignore"):
                    a.log()
        assert "1 NaN" in str(excinfo.value)
        assert "1 Inf" in str(excinfo.value)

    def test_creation_stack_points_at_user_code(self):
        a = Tensor(np.array([-1.0]), requires_grad=True)
        with detect_anomaly():
            with pytest.raises(AnomalyError) as excinfo:
                with np.errstate(all="ignore"):
                    a.log()
        assert __file__ in str(excinfo.value)

    def test_finite_graph_passes_untouched(self):
        a = Tensor(np.linspace(0.1, 1.0, 8), requires_grad=True)
        with detect_anomaly():
            loss = (a.log() * a).sum()
            loss.backward()
        assert np.all(np.isfinite(a.grad))


class TestBackward:
    def test_names_op_with_nonfinite_gradient(self):
        # sqrt is finite at 0 but its derivative is infinite there.
        a = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with detect_anomaly():
            loss = (a ** 0.5).sum()
            with pytest.raises(AnomalyError) as excinfo:
                with np.errstate(all="ignore"):
                    loss.backward()
        message = str(excinfo.value)
        assert "backward of op 'pow'" in message
        assert "Inf" in message

    def test_check_backward_false_skips_gradient_checks(self):
        a = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with detect_anomaly(check_backward=False):
            loss = (a ** 0.5).sum()
            with np.errstate(all="ignore"):
                loss.backward()  # must not raise
        assert np.isinf(a.grad).any()

    def test_preexisting_bad_grad_not_blamed_on_later_op(self):
        # A parent whose .grad is already non-finite before the op's
        # backward runs must not trigger a false attribution.
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with detect_anomaly():
            loss = (a * 3.0).sum()
            a.grad = np.array([np.inf, np.inf])
            loss.backward()  # accumulates into the already-bad grad
        assert np.isinf(a.grad).all()


class TestHookLifecycle:
    def test_hooks_unregistered_on_exit(self):
        assert not autograd.op_hooks()
        with detect_anomaly():
            assert len(autograd.op_hooks()) == 1
        assert not autograd.op_hooks()

    def test_hooks_unregistered_on_exception(self):
        with pytest.raises(AnomalyError):
            with detect_anomaly():
                with np.errstate(all="ignore"):
                    Tensor(np.array([-1.0]), requires_grad=True).log()
        assert not autograd.op_hooks()

    def test_not_reentrant(self):
        context = detect_anomaly()
        with context:
            with pytest.raises(RuntimeError):
                context.__enter__()
        assert not autograd.op_hooks()

    def test_no_overhead_outside_context(self):
        # The engine only pays when hooks are registered.
        assert autograd.op_hooks() == []
        out = Tensor(np.ones(3), requires_grad=True) * 2.0
        assert out._backward is not None
