"""Remediation drill gate (`make drill`).

Runs the seeded closed-loop drill across a fixed seed matrix and
enforces the convergence contract: at least 30% of services faulted,
at least 90% of the faulted services auto-remediated back to HEALTHY
with a verified incident, zero policy guardrail violations, and a
bitwise-reproducible event log.
"""

import json

import pytest

from repro.obs.report import render_report
from repro.runtime.remediation import DrillConfig, run_drill
from repro.runtime.remediation.drill import SCENARIOS

# Chosen so the union exercises every fault scenario AND every
# action-fault kind (fail / hang / relapse) — asserted below, so a
# refactor of the seeded assignment cannot silently shrink coverage.
SEEDS = (0, 1, 2, 4)

_CONFIGS = {seed: DrillConfig(seed=seed) for seed in SEEDS}
_REPORTS = {}


def _report(seed):
    if seed not in _REPORTS:
        _REPORTS[seed] = run_drill(_CONFIGS[seed])
    return _REPORTS[seed]


@pytest.mark.parametrize("seed", SEEDS)
class TestDrillGate:
    def test_fault_coverage_floor(self, seed):
        report = _report(seed)
        assert report.faulted / len(report.rows) >= 0.3

    def test_converged_fraction_floor(self, seed):
        report = _report(seed)
        assert report.converged_fraction >= 0.9, report.to_table()

    def test_zero_guardrail_violations(self, seed):
        assert _report(seed).violations == 0

    def test_control_services_stay_quiet(self, seed):
        controls = [row for row in _report(seed).rows if not row.scenario]
        for row in controls:
            assert row.incidents == 0, row
            assert row.converged

    def test_faulted_services_resolved_and_verified(self, seed):
        for row in _report(seed).rows:
            if row.scenario and row.converged:
                assert row.resolved >= 1
                assert row.escalated == 0
                assert row.final_state == "healthy"


class TestDrillCoverage:
    """The seed matrix must exercise every failure shape end to end."""

    def test_all_scenarios_present_across_matrix(self):
        scenarios = {row.scenario for seed in SEEDS
                     for row in _report(seed).rows if row.scenario}
        assert scenarios == set(SCENARIOS)

    def test_all_action_fault_kinds_present_across_matrix(self):
        kinds = {row.action_fault for seed in SEEDS
                 for row in _report(seed).rows if row.action_fault}
        assert kinds == {"action_fail", "action_hang", "recovery_relapse"}

    def test_sabotaged_services_still_converge(self):
        # Sabotage makes the loop work harder, not give up: rollback plus
        # a ladder climb still lands the service back at HEALTHY.
        sabotaged = [row for seed in SEEDS for row in _report(seed).rows
                     if row.action_fault]
        assert sabotaged
        assert all(row.converged for row in sabotaged)
        assert any(outcome in ("failed", "timed_out")
                   for row in sabotaged for _, outcome in row.actions)


class TestReproducibility:
    def test_event_log_is_bitwise_reproducible(self, tmp_path):
        first = tmp_path / "run-a" / "events.jsonl"
        second = tmp_path / "run-b" / "events.jsonl"
        report_a = run_drill(DrillConfig(seed=3, events_path=first))
        report_b = run_drill(DrillConfig(seed=3, events_path=second))
        assert report_a.to_json() == report_b.to_json()
        assert first.read_bytes() == second.read_bytes()
        assert first.stat().st_size > 0

    def test_report_json_round_trips(self):
        payload = json.loads(_report(0).to_json())
        assert payload["seed"] == 0
        assert payload["violations"] == 0
        assert len(payload["rows"]) == _CONFIGS[0].num_services


class TestObsReport:
    def test_timeline_renders_from_jsonl_alone(self, tmp_path):
        run = tmp_path / "run"
        run_drill(DrillConfig(seed=0, events_path=run / "events.jsonl"))
        # Render straight from the serialized log: no in-process state.
        text = render_report(run)
        assert "remediation incidents" in text
        assert "remediation timeline" in text
        assert "incident_resolved" in text
        assert "remediation_verified" in text


class TestDrillConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            DrillConfig(num_services=0)
        with pytest.raises(ValueError):
            DrillConfig(fault_rate=1.5)
        with pytest.raises(ValueError):
            DrillConfig(ticks=10)
