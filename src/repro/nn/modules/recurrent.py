"""Recurrent layers (GRU) used by the recurrent baselines.

The paper argues recurrent baselines (OmniAnomaly, MSCRED, VRNN) cannot be
parallelised across time steps; having a real sequential GRU here lets the
efficiency benchmarks (Fig. 6a) measure that honestly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.spec import TensorSpec, merge_dtype
from repro.nn import init
from repro.nn.modules.base import Module
from repro.nn.tensor import Parameter, Tensor, concatenate, stack, zeros

__all__ = ["GRUCell", "GRU", "LSTMCell"]


class GRUCell(Module):
    """Single-step gated recurrent unit."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight_ih = Parameter(
            init.uniform((3 * hidden_size, input_size), -bound, bound, rng=rng)
        )
        self.weight_hh = Parameter(
            init.uniform((3 * hidden_size, hidden_size), -bound, bound, rng=rng)
        )
        self.bias_ih = Parameter(np.zeros(3 * hidden_size))
        self.bias_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gates_x = x @ self.weight_ih.transpose() + self.bias_ih
        gates_h = h @ self.weight_hh.transpose() + self.bias_hh
        hs = self.hidden_size
        reset = (gates_x[:, :hs] + gates_h[:, :hs]).sigmoid()
        update = (gates_x[:, hs:2 * hs] + gates_h[:, hs:2 * hs]).sigmoid()
        candidate = (gates_x[:, 2 * hs:] + reset * gates_h[:, 2 * hs:]).tanh()
        return update * h + (1.0 - update) * candidate

    def contract(self, spec: TensorSpec) -> TensorSpec:
        spec.require_ndim(2, "GRUCell")
        spec.require_axis(-1, self.input_size, "GRUCell", "input_size")
        merge_dtype(spec, self.weight_ih, self.weight_hh, who="GRUCell")
        return spec.with_shape((spec.shape[0], self.hidden_size))


class GRU(Module):
    """Sequence GRU over inputs of shape ``(N, T, input_size)``.

    Returns the full hidden sequence ``(N, T, hidden)`` and the final hidden
    state ``(N, hidden)``.  Deliberately sequential over T.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(self, x: Tensor, h0: Tensor | None = None):
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else zeros(batch, self.hidden_size)
        outputs = []
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
            outputs.append(h)
        return stack(outputs, axis=1), h

    def contract(self, spec: TensorSpec):
        spec.require_ndim(3, "GRU")
        step = self.cell.contract(
            spec.with_shape((spec.shape[0], spec.shape[-1]))
        )
        sequence = spec.with_shape(
            (spec.shape[0], spec.shape[1], self.hidden_size), step.dtype
        )
        return sequence, step


class LSTMCell(Module):
    """Single-step LSTM (used by the LSTM-NDT style predictor)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight = Parameter(
            init.uniform((4 * hidden_size, input_size + hidden_size), -bound, bound, rng=rng)
        )
        self.bias = Parameter(np.zeros(4 * hidden_size))

    def forward(self, x: Tensor, state):
        h, c = state
        combined = concatenate([x, h], axis=-1)
        gates = combined @ self.weight.transpose() + self.bias
        hs = self.hidden_size
        input_gate = gates[:, :hs].sigmoid()
        forget_gate = gates[:, hs:2 * hs].sigmoid()
        candidate = gates[:, 2 * hs:3 * hs].tanh()
        output_gate = gates[:, 3 * hs:].sigmoid()
        c_next = forget_gate * c + input_gate * candidate
        h_next = output_gate * c_next.tanh()
        return h_next, c_next

    def contract(self, spec: TensorSpec):
        spec.require_ndim(2, "LSTMCell")
        spec.require_axis(-1, self.input_size, "LSTMCell", "input_size")
        merge_dtype(spec, self.weight, self.bias, who="LSTMCell")
        state = spec.with_shape((spec.shape[0], self.hidden_size))
        return state, state
