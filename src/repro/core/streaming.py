"""Online anomaly detection: score points as they arrive.

Wraps a fitted :class:`~repro.core.detector.MaceDetector` (or any
``AnomalyDetector``) behind a per-service ring buffer.  Each ``update``
appends one observation, scores the newest full window, and passes the
newest timestamp's error through a streaming SPOT threshold — the
deployment loop for the paper's C2 setting (heavy traffic, real time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.detector import AnomalyDetector, MaceDetector
from repro.eval.spot import Spot

__all__ = ["StreamUpdate", "StreamingDetector"]


@dataclass(frozen=True)
class StreamUpdate:
    """Outcome of feeding one observation to the stream."""

    score: float
    is_alert: bool
    ready: bool          # False while the window buffer is still filling
    threshold: float


class _ServiceStream:
    """Per-service ring buffer + SPOT state."""

    def __init__(self, window: int, num_features: int, spot: Spot):
        self.buffer = np.zeros((window, num_features))
        self.filled = 0
        self.spot = spot


class StreamingDetector:
    """Point-at-a-time scoring on top of a fitted window detector.

    Parameters
    ----------
    detector:
        A fitted detector.  For :class:`MaceDetector` the wrapped trainer is
        used directly (cheapest path); any other ``AnomalyDetector`` is
        scored through its public API.
    window:
        Window length the detector expects.
    q, calibration_quantile:
        SPOT alert rate and initial level.
    """

    def __init__(self, detector: AnomalyDetector, window: int = 40,
                 q: float = 1e-3, calibration_level: float = 0.98):
        self.detector = detector
        self.window = window
        self.q = q
        self.calibration_level = calibration_level
        self._streams: Dict[str, _ServiceStream] = {}

    def start_service(self, service_id: str, recent_history: np.ndarray) -> None:
        """Begin streaming for a service, calibrating SPOT on its history.

        ``recent_history`` should be a recent, mostly-normal stretch of at
        least a few hundred points (it fills the buffer and calibrates the
        alert threshold).
        """
        history = np.atleast_2d(np.asarray(recent_history, dtype=float))
        if history.shape[0] < self.window * 2:
            raise ValueError(
                f"need at least {2 * self.window} history points to calibrate"
            )
        scores = self.detector.score(service_id, history)
        spot = Spot(q=self.q, level=self.calibration_level)
        spot.initialize(scores)
        stream = _ServiceStream(self.window, history.shape[1], spot)
        stream.buffer[:] = history[-self.window:]
        stream.filled = self.window
        self._streams[service_id] = stream

    def update(self, service_id: str, observation: np.ndarray) -> StreamUpdate:
        """Feed one multivariate observation; score its timestamp."""
        if service_id not in self._streams:
            raise KeyError(
                f"service {service_id!r} not started; call start_service()"
            )
        stream = self._streams[service_id]
        observation = np.asarray(observation, dtype=float).reshape(-1)
        if observation.size != stream.buffer.shape[1]:
            raise ValueError(
                f"expected {stream.buffer.shape[1]} features, "
                f"got {observation.size}"
            )
        stream.buffer = np.roll(stream.buffer, -1, axis=0)
        stream.buffer[-1] = observation
        stream.filled = min(stream.filled + 1, self.window)
        if stream.filled < self.window:
            return StreamUpdate(0.0, False, False, stream.spot.threshold)

        score = float(self._window_error(service_id, stream.buffer))
        is_alert = stream.spot.step(score)
        return StreamUpdate(score, is_alert, True, stream.spot.threshold)

    def _window_error(self, service_id: str, window_values: np.ndarray) -> float:
        """Newest-timestamp error of the current window."""
        batch = window_values[None]
        if isinstance(self.detector, MaceDetector) and self.detector.trainer:
            errors = self.detector.trainer.window_errors(service_id, batch)
            return errors[0, -1]
        scores = self.detector.score(service_id, window_values)
        return scores[-1]

    def threshold(self, service_id: str) -> float:
        return self._streams[service_id].spot.threshold
