"""Periodicity estimation and window recommendation."""

import numpy as np
import pytest

from repro.frequency.periodicity import (
    estimate_periods,
    recommend_window,
)


def _tone(length, period, amplitude=1.0, noise=0.05, rng=None):
    rng = rng or np.random.default_rng(0)
    t = np.arange(length)
    return amplitude * np.sin(2 * np.pi * t / period) + noise * rng.normal(
        size=length
    )


class TestEstimatePeriods:
    def test_finds_single_tone(self):
        estimates = estimate_periods(_tone(1024, 32.0))
        assert estimates
        assert abs(estimates[0].period - 32.0) < 2.0
        assert estimates[0].autocorrelation > 0.5

    def test_orders_by_power(self, rng):
        x = _tone(2048, 64.0, amplitude=2.0, rng=rng) + _tone(
            2048, 16.0, amplitude=0.7, rng=rng
        )
        estimates = estimate_periods(x, max_candidates=3)
        assert abs(estimates[0].period - 64.0) < 4.0

    def test_white_noise_has_low_confirmation(self, rng):
        estimates = estimate_periods(rng.normal(size=2048))
        assert all(e.autocorrelation < 0.3 for e in estimates)

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            estimate_periods(np.zeros(4))

    def test_constant_series_returns_empty(self):
        assert estimate_periods(np.ones(128)) == []

    def test_duplicate_periods_suppressed(self):
        estimates = estimate_periods(_tone(1024, 32.0), max_candidates=5)
        periods = [e.period for e in estimates]
        for i, a in enumerate(periods):
            for b in periods[i + 1:]:
                assert abs(a - b) / a >= 0.15


class TestRecommendWindow:
    def test_covers_dominant_period(self):
        window = recommend_window(_tone(2048, 20.0))
        assert 36 <= window <= 48
        assert window % 2 == 0

    def test_clamped(self):
        assert recommend_window(_tone(2048, 4.0), minimum=16) >= 16
        assert recommend_window(_tone(4096, 200.0), maximum=128) <= 128

    def test_multivariate(self, rng):
        series = np.stack(
            [_tone(2048, 20.0, rng=rng), _tone(2048, 12.0, rng=rng)], axis=1
        )
        window = recommend_window(series)
        assert window >= 24

    def test_noise_falls_back_to_minimum(self, rng):
        window = recommend_window(rng.normal(size=512), minimum=16)
        assert window >= 16
