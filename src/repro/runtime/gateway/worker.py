"""Shard worker process: one ServingRuntime behind a command pipe.

Each gateway shard runs this entry point in a child process.  The worker
owns the authoritative streaming state for every service hashed onto its
shard; the parent talks to it over a duplex pipe with a tiny
stop-and-wait command protocol:

``{"op": "update", ...}``
    Apply one point update (``service``, ``sequence``, ``observation``,
    ``degraded``) through
    :meth:`~repro.runtime.serving.ServingRuntime.update` and reply with
    an ``ack`` carrying the scoring outcome.  The sequence number makes
    re-delivery (the parent's retransmit after an ack timeout, or a WAL
    replay overlapping a snapshot) a no-op.  Commands carrying a sampled
    trace context get a ``worker.update`` span recorded (and flushed) to
    the shard's ``spans.jsonl`` *before* the ack is sent, parented under
    the gateway's submit span — which is what keeps every acked update's
    cross-process trace tree complete through kills and replays.
``{"op": "snapshot"}``
    Write the serving-state snapshot (buffers + SPOT + sequence
    high-water) atomically and acknowledge.
``{"op": "state"}``
    Reply with the full serving state dict — the chaos suite's bitwise
    verification surface.
``{"op": "stop"}``
    Snapshot, reply ``bye``, exit cleanly.

On spawn the worker rebuilds deterministically: calibrate every service
from its (identical every run) history, then overlay the last snapshot
if one exists.  The parent finishes the job by replaying WAL records
newer than the snapshot's high-water marks, so *snapshot + replay* is
bitwise the state of an uninterrupted run.

Fault hooks mirror the training orchestrator's: ``slow_start`` stalls
the worker before it signals readiness (exercising spawn timeouts and
queue backpressure during warm-up) and ``die_after_applies`` hard-exits
with :data:`KILLED_EXIT_CODE` after N applied updates — *after* applying
but *before* acknowledging, the nastiest window the ack protocol has.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.obs.events import EventLog, install_event_log
from repro.obs.metrics import MetricsRegistry, install_registry
from repro.obs.propagate import TraceContext, TraceLog
from repro.runtime.checkpoint import (
    CheckpointError,
    load_streaming_state,
    save_streaming_state,
)
from repro.runtime.serving import ServingRuntime

__all__ = ["KILLED_EXIT_CODE", "run_shard_worker"]

# Exit code for an injected hard kill (os._exit: no cleanup, no ack) —
# same convention as the training orchestrator's killed workers.
KILLED_EXIT_CODE = 73

_POLL_SECONDS = 0.05


def _build_runtime(payload: dict) -> ServingRuntime:
    runtime = ServingRuntime(
        payload["detector"], window=payload["window"], q=payload["q"],
    )
    # Sorted start order keeps calibration deterministic regardless of
    # how the parent happened to order the shard's service dict.
    for service_id in sorted(payload["services"]):
        history = np.asarray(payload["services"][service_id], dtype=float)
        runtime.start_service(service_id, history)
    snapshot_path = payload.get("snapshot_path")
    if snapshot_path and os.path.exists(snapshot_path):
        try:
            load_streaming_state(runtime, snapshot_path)
        except CheckpointError:
            # A torn/corrupt snapshot is recoverable: fall back to the
            # calibrated baseline and let the parent replay the full WAL.
            pass
    return runtime


def run_shard_worker(payload: dict, conn) -> None:
    """Child-process entry: serve one shard over ``conn`` until stopped."""
    # Fresh per-process telemetry: the forked copies of the parent's
    # registry/event log must not silently absorb worker-side signals.
    install_registry(MetricsRegistry())
    install_event_log(EventLog())

    slow_start = float(payload.get("slow_start") or 0.0)
    if slow_start > 0.0:
        time.sleep(slow_start)

    runtime = _build_runtime(payload)
    snapshot_path = payload.get("snapshot_path")
    snapshot_every = int(payload.get("snapshot_every") or 0)
    die_after = payload.get("die_after_applies")
    applies = 0
    # Cross-process span sink: one flushed line per applied update, so a
    # hard kill tears at most the final line.  The incarnation qualifies
    # every span id — each respawn derives fresh, deterministic ids even
    # when it re-applies the same (service, sequence).
    trace_path = payload.get("trace_path")
    traces = TraceLog(trace_path) if trace_path else None
    incarnation = int(payload.get("incarnation") or 0)
    span_count = 0

    conn.send({
        "op": "hello",
        "applied": {service_id: runtime.applied_sequence(service_id)
                    for service_id in runtime.services()},
    })

    while True:
        if not conn.poll(_POLL_SECONDS):
            continue
        try:
            command = conn.recv()
        except EOFError:
            break                           # parent went away; die quietly
        op = command.get("op")
        if op == "update":
            context = TraceContext.from_wire(command.get("trace"))
            update_started = time.perf_counter()
            outcome = runtime.update(
                command["service"],
                np.asarray(command["observation"], dtype=float),
                sequence=int(command["sequence"]),
                force_fallback=bool(command.get("degraded", False)),
                trace_id=(context.trace_id if context is not None
                          and context.sampled else None),
            )
            update_seconds = time.perf_counter() - update_started
            if not outcome.duplicate:
                applies += 1
                if snapshot_path and snapshot_every \
                        and applies % snapshot_every == 0:
                    save_streaming_state(runtime, snapshot_path)
                if die_after is not None and applies >= int(die_after):
                    # Applied but never acknowledged: the parent must
                    # retransmit and the sequence check must absorb it.
                    os._exit(KILLED_EXIT_CODE)
            if context is not None and context.sampled \
                    and traces is not None:
                # Recorded (and flushed) before the ack leaves, so every
                # acknowledged update's trace tree is complete on disk
                # even if the very next instruction is a kill.
                span_count += 1
                child = context.child(
                    "worker.update", qualifier=f"{incarnation}:{span_count}")
                traces.record(
                    "worker.update", child, update_seconds,
                    parent_span_id=context.span_id, depth=1,
                    service=command["service"],
                    sequence=int(command["sequence"]),
                    shard=payload.get("shard"),
                    incarnation=incarnation,
                    replay=bool(command.get("replay", False)),
                    duplicate=outcome.duplicate,
                )
            conn.send({
                "op": "ack",
                "service": command["service"],
                "sequence": int(command["sequence"]),
                "score": outcome.score,
                "is_alert": outcome.is_alert,
                "ready": outcome.ready,
                "duplicate": outcome.duplicate,
                "used_fallback": outcome.used_fallback,
                "health": outcome.health,
            })
        elif op == "snapshot":
            if snapshot_path:
                save_streaming_state(runtime, snapshot_path)
            conn.send({"op": "snapshot_done"})
        elif op == "state":
            conn.send({"op": "state", "state": runtime.state_dict(),
                       "health": {service_id: state.value for service_id,
                                  state in runtime.health_states().items()}})
        elif op == "stop":
            if snapshot_path:
                save_streaming_state(runtime, snapshot_path)
            conn.send({"op": "bye", "applies": applies})
            break
        else:
            conn.send({"op": "error", "error": f"unknown op {op!r}"})
    if traces is not None:
        traces.close()
    conn.close()
