"""Table IX — ablation: remove each MACE module in turn.

Variants (matching the paper's rows):

* Context-aware DFT & IDFT → vanilla full-spectrum DFT/IDFT;
* Dualistic Convolution (F) → standard convolution in the autoencoder;
* Dualistic Convolution (T) → no stage-1 amplifier;
* Frequency Characterization → drop the marked-basis channels;
* Pattern extraction → vanilla DFT/IDFT *and* no characterization markers.
"""

from common import (
    PAPER_TABLE9_F1,
    TABLE_DATASETS,
    bench_dataset,
    mace_factory,
    run_once,
    save_results,
    scale_params,
)
from repro.data import unified_groups
from repro.eval import format_table, run_unified

VARIANTS = {
    "no context-aware DFT/IDFT": dict(context_aware=False),
    "no dualistic conv (freq)": dict(use_dualistic_freq=False),
    "no dualistic conv (time)": dict(use_time_amplifier=False),
    "no frequency characterization": dict(use_characterization_markers=False),
    "no pattern extraction": dict(context_aware=False,
                                  use_characterization_markers=False),
    "MACE": {},
}


def compute_table():
    params = scale_params()
    results = {}
    for dataset_name in TABLE_DATASETS:
        dataset = bench_dataset(dataset_name)
        groups = unified_groups(dataset, params["group_size"])
        per_variant = {}
        for variant_name, overrides in VARIANTS.items():
            per_variant[variant_name] = run_unified(
                mace_factory(**overrides), groups
            )
        results[dataset_name] = per_variant
    return results


def test_table9_ablation(benchmark):
    results = run_once(benchmark, compute_table)
    print()
    measured = {}
    for dataset_name, per_variant in results.items():
        rows = []
        measured[dataset_name] = {}
        for variant_name, outcome in per_variant.items():
            measured[dataset_name][variant_name] = outcome.f1
            rows.append((variant_name, outcome.precision, outcome.recall,
                         outcome.f1,
                         PAPER_TABLE9_F1[variant_name][dataset_name]))
        print(format_table(
            ("variant", "precision", "recall", "F1", "paper F1"), rows,
            title=f"Table IX [{dataset_name}] — module ablation",
        ))
        print()
    save_results("table9", {"measured": measured, "paper": PAPER_TABLE9_F1})

    # Shape: the full model is at least as good as (almost) every ablation
    # on the diverse dataset, and the pattern-extraction ablation hurts most
    # where patterns are diverse (smd) and least where they are similar
    # (j-d2) — the paper's central ablation claim.
    smd = results["smd"]
    full = smd["MACE"].f1
    degraded = [name for name, outcome in smd.items()
                if name != "MACE" and outcome.f1 < full + 0.02]
    assert len(degraded) >= 3, (
        f"expected most ablations to hurt on smd; only {degraded} did"
    )
    drop_smd = results["smd"]["MACE"].f1 - results["smd"]["no pattern extraction"].f1
    drop_jd2 = results["j-d2"]["MACE"].f1 - results["j-d2"]["no pattern extraction"].f1
    assert drop_smd > drop_jd2 - 0.02, (
        "pattern extraction should matter more on diverse patterns"
    )
