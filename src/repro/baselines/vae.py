"""VAE baseline (Kingma & Welling, 2014) — the classical reference point.

A dense variational autoencoder over flattened windows; reconstruction
error is the anomaly score.  The paper uses it as the low-cost yardstick in
the efficiency study (Fig. 6a).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spec import TensorSpec, child_contract
from repro.baselines.base import BaselineConfig, NeuralWindowDetector
from repro.nn import functional as F
from repro.nn.modules.activations import ReLU
from repro.nn.modules.base import Module
from repro.nn.modules.linear import Linear
from repro.nn.tensor import Tensor

__all__ = ["VaeModel", "VaeDetector"]


class VaeModel(Module):
    """Dense VAE over flattened ``(B, T*m)`` windows."""

    def __init__(self, window: int, num_features: int, hidden: int = 64,
                 latent: int = 8, rng: np.random.Generator | None = None):
        super().__init__()
        self.window = window
        self.num_features = num_features
        flat = window * num_features
        self.enc1 = Linear(flat, hidden, rng=rng)
        self.enc_mu = Linear(hidden, latent, rng=rng)
        self.enc_logvar = Linear(hidden, latent, rng=rng)
        self.dec1 = Linear(latent, hidden, rng=rng)
        self.dec2 = Linear(hidden, flat, rng=rng)
        self.act = ReLU()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def encode(self, flat: Tensor):
        hidden = self.act(self.enc1(flat))
        return self.enc_mu(hidden), self.enc_logvar(hidden).clip(-8.0, 8.0)

    def decode(self, z: Tensor) -> Tensor:
        return self.dec2(self.act(self.dec1(z)))

    def forward(self, windows: Tensor):
        batch = windows.shape[0]
        flat = windows.reshape(batch, -1)
        mu, logvar = self.encode(flat)
        noise = Tensor(self._rng.normal(size=mu.shape)) if self.training else 0.0
        z = mu + (logvar * 0.5).exp() * noise if self.training else mu
        reconstruction = self.decode(z)
        return reconstruction, flat, mu, logvar

    def contract(self, spec: TensorSpec):
        spec.require_ndim(3, "VaeModel")
        spec.require_axis(1, self.window, "VaeModel", "window")
        spec.require_axis(2, self.num_features, "VaeModel", "num_features")
        flat = spec.with_shape((spec.shape[0], spec.shape[1] * spec.shape[2]))
        hidden = child_contract("enc1", self.enc1, flat)
        mu = child_contract("enc_mu", self.enc_mu, hidden)
        logvar = child_contract("enc_logvar", self.enc_logvar, hidden)
        decoded = child_contract(
            "dec2", self.dec2, child_contract("dec1", self.dec1, mu)
        )
        return decoded, flat, mu, logvar


class VaeDetector(NeuralWindowDetector):
    """VAE on the shared detector API."""

    name = "VAE"

    def __init__(self, config: BaselineConfig | None = None, hidden: int = 64,
                 latent: int = 8, beta: float = 1e-2):
        super().__init__(config)
        self.hidden = hidden
        self.latent = latent
        self.beta = beta

    def build_model(self, num_features: int) -> Module:
        return VaeModel(self.config.window, num_features, self.hidden,
                        self.latent, rng=self.rng)

    def model_loss(self, model: Module, windows: Tensor,
                   service_id: str) -> Tensor:
        reconstruction, flat, mu, logvar = model(windows)
        recon = F.mse_loss(reconstruction, flat)
        kl = F.kl_diag_gaussian(mu, logvar)
        return recon + self.beta * kl

    def window_errors(self, model: Module, windows: np.ndarray,
                      service_id: str) -> np.ndarray:
        reconstruction, flat, _, _ = model(Tensor(windows))
        diff = (reconstruction.data - flat.data) ** 2
        per_step = diff.reshape(windows.shape[0], self.config.window, -1)
        return per_step.mean(axis=-1)
