"""The MACE model: four stages over one window batch (paper Fig. 2).

1. amplify anomalies in the time domain (dualistic conv, stride 1);
2. project onto the service's normal-pattern subspace (context-aware DFT)
   and build the frequency representation (characterization module);
3. reconstruct the representation with a dualistic-convolution autoencoder —
   separate peak and valley branches;
4. synthesise both branches back to the time domain (context-aware IDFT) and
   keep, per time slot, the branch with the larger reconstruction error.

The model's learnable weights are shared across every service; all
service-specific state lives in the
:class:`~repro.core.pattern_extraction.PatternExtractor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

import numpy as np

from repro.analysis.spec import ContractError, TensorSpec, child_contract
from repro.core.characterization import FrequencyCharacterization
from repro.core.dualistic import DualisticConv1d, TimeDomainAmplifier
from repro.core.pattern_extraction import PatternExtractor
from repro.nn import functional as F
from repro.nn.modules.activations import LeakyReLU
from repro.nn.modules.base import Module
from repro.nn.modules.conv import Conv1d, ConvTranspose1d
from repro.nn.tensor import Tensor, maximum, pad1d

__all__ = ["MaceConfig", "MaceOutput", "MaceModel"]


@dataclass(frozen=True)
class MaceConfig:
    """All MACE hyperparameters (paper Table IV, adapted to this scale).

    Notes on defaults: the paper reports window 40 and subset size m = 20;
    with a window of 40 the real spectrum has only 21 bins, so m = 20 is
    nearly the full spectrum — at our scale ``num_bases = 10`` keeps the
    subset genuinely sparse (≈ half the bins).  Both values are swept by the
    Fig. 6(f) bench.
    """

    window: int = 40
    num_bases: int = 10
    channels: int = 8
    gamma_time: int = 11
    gamma_freq: int = 7
    sigma_time: float = 5.0
    sigma_freq: float = 5.0
    kernel_time: int = 5
    kernel_freq: int = 5
    characterization_kernel: int = 3
    amplifier_blend: float = 0.3
    valley_mode: str = "negated"
    # Ablation switches (Table IX rows)
    use_time_amplifier: bool = True
    use_dualistic_freq: bool = True
    use_characterization_markers: bool = True
    context_aware: bool = True
    select_max_error: bool = True
    # Training.  The paper trains with lr 1e-3 on full-size datasets; at
    # this repository's reduced scale (fewer windows per epoch) a slightly
    # higher rate with stride-2 windows reaches the same converged regime.
    learning_rate: float = 3e-3
    epochs: int = 5
    batch_size: int = 64
    train_stride: int = 4
    grad_clip: float = 5.0
    subspace_stride: int = 4
    seed: int = 0

    def ablate(self, **changes) -> "MaceConfig":
        """Return a copy with the given fields changed (Table IX variants)."""
        return replace(self, **changes)


@dataclass
class MaceOutput:
    """Forward-pass artefacts needed for both training and scoring."""

    amplified: Tensor           # (N, T, m) stage-1 output (the recon target)
    reconstruction_peak: Tensor   # (N, T, m)
    reconstruction_valley: Tensor  # (N, T, m)

    def branch_errors(self) -> tuple:
        """Per-branch squared error averaged over features: two (N, T)."""
        diff_peak = self.reconstruction_peak - self.amplified
        diff_valley = self.reconstruction_valley - self.amplified
        return (
            (diff_peak * diff_peak).mean(axis=-1),
            (diff_valley * diff_valley).mean(axis=-1),
        )


class _Branch(Module):
    """One reconstruction branch (peak or valley) of the autoencoder."""

    def __init__(self, config: MaceConfig, mode: str,
                 rng: np.random.Generator | None = None):
        super().__init__()
        channels = config.channels
        gamma = config.gamma_freq if config.use_dualistic_freq else 1
        self.kernel = config.kernel_freq
        # The representation is tanh-bounded to [-1, 1]; shift = 2 keeps the
        # powered values positive so peak/valley act as segment max/min
        # pickers over the spectrum representation (Fig. 4a).
        self.encoder = DualisticConv1d(
            channels, 2 * channels, config.kernel_freq,
            stride=config.kernel_freq, gamma=gamma, sigma=config.sigma_freq,
            mode=mode, shift=2.0, valley_mode=config.valley_mode, rng=rng,
        )
        self.decoder = ConvTranspose1d(
            2 * channels, channels, config.kernel_freq,
            stride=config.kernel_freq, rng=rng,
        )
        self.activation = LeakyReLU(0.1)
        self.head = Conv1d(channels, 1, 1, rng=rng)

    def contract(self, spec: TensorSpec) -> TensorSpec:
        """``(N*m, C, 2k) -> (N*m, 2k)`` reconstructed spectrum."""
        spec.require_ndim(3, "_Branch")
        width = spec.shape[-1]
        if not width.is_concrete:
            raise ContractError(
                f"_Branch requires a concrete spectrum width, got {width}"
            )
        remainder = width.value % self.kernel
        padded_width = width.value + (self.kernel - remainder if remainder else 0)
        padded = spec.with_shape(spec.shape[:-1] + (padded_width,))
        latent = child_contract("encoder", self.encoder, padded)
        decoded = child_contract(
            "activation", self.activation,
            child_contract("decoder", self.decoder, latent),
        )
        spectrum = child_contract("head", self.head, decoded)
        out_width = spectrum.shape[-1]
        if out_width.is_concrete and out_width.value < width.value:
            raise ContractError(
                f"_Branch: decoded width {out_width} is narrower than the "
                f"input spectrum width {width}"
            )
        return spectrum.with_shape((spec.shape[0], width))

    def forward(self, representation: Tensor, width: int) -> Tensor:
        """``(N*m, C, 2k) -> (N*m, 2k)`` reconstructed spectrum."""
        remainder = representation.shape[-1] % self.kernel
        padded = representation
        if remainder:
            padded = pad1d(representation, 0, self.kernel - remainder)
        latent = self.encoder(padded)
        decoded = self.activation(self.decoder(latent))
        spectrum = self.head(decoded)  # (N*m, 1, padded_width)
        return spectrum[:, 0, :width]


class MaceModel(Module):
    """Shared-weight MACE network; pair with a :class:`PatternExtractor`."""

    def __init__(self, config: MaceConfig,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.amplifier = TimeDomainAmplifier(
            config.gamma_time, config.sigma_time, config.kernel_time,
            blend=config.amplifier_blend,
        )
        self.characterization = FrequencyCharacterization(
            config.channels, config.characterization_kernel,
            use_markers=config.use_characterization_markers, rng=rng,
        )
        self.peak_branch = _Branch(config, "peak", rng=rng)
        self.valley_branch = _Branch(config, "valley", rng=rng)

    def contract(self, spec: TensorSpec) -> TensorSpec:
        """Validate the full four-stage pipeline on ``(N, T, m)`` windows.

        Returns the reconstruction spec, which equals the input spec (the
        context-aware IDFT synthesises back to the time domain).
        """
        spec.require_ndim(3, "MaceModel")
        spec.require_axis(1, self.config.window, "MaceModel", "window")
        amplified = spec
        if self.config.use_time_amplifier:
            amplified = child_contract("amplifier", self.amplifier, spec)
            if amplified.shape != spec.shape:
                raise ContractError(
                    f"amplifier must preserve the window batch shape: "
                    f"{spec} -> {amplified}"
                )
        n, _, m = amplified.shape
        width = 2 * self.config.num_bases
        coeffs = amplified.with_shape((n, m, width))
        representation = child_contract(
            "characterization", self.characterization, coeffs
        )
        for name in ("peak_branch", "valley_branch"):
            spectrum = child_contract(name, getattr(self, name), representation)
            if spectrum.numel() != coeffs.numel():
                raise ContractError(
                    f"{name} output {spectrum} cannot reshape back to the "
                    f"coefficient block {coeffs}"
                )
        return spec.with_shape(spec.shape, representation.dtype)

    def forward(self, windows: Tensor, extractor: PatternExtractor,
                service_id: str) -> MaceOutput:
        """Run all four stages for one service's window batch."""
        if windows.ndim != 3:
            raise ValueError("windows must be (N, T, m)")
        amplified = (
            self.amplifier(windows) if self.config.use_time_amplifier else windows
        )
        dft, idft = extractor.transforms(service_id)
        subspace = extractor.subspace(service_id)
        coeffs = dft(amplified)  # (N, m, 2k)
        n, m, width = coeffs.shape
        representation = self.characterization(coeffs, subspace)  # (N*m, C, 2k)

        reconstructions = []
        for branch in (self.peak_branch, self.valley_branch):
            spectrum = branch(representation, width).reshape(n, m, width)
            reconstructions.append(idft(spectrum))  # (N, T, m)
        return MaceOutput(amplified, reconstructions[0], reconstructions[1])

    def loss(self, output: MaceOutput) -> Tensor:
        """Stage-4 objective: mean of the per-slot max-branch error."""
        error_peak, error_valley = output.branch_errors()
        if self.config.select_max_error:
            combined = maximum(error_peak, error_valley)
        else:
            combined = (error_peak + error_valley) * 0.5
        return combined.mean()

    def timestep_errors(self, output: MaceOutput) -> np.ndarray:
        """Anomaly score per window timestep, ``(N, T)`` (no grad)."""
        error_peak, error_valley = output.branch_errors()
        if self.config.select_max_error:
            return np.maximum(error_peak.data, error_valley.data)
        return 0.5 * (error_peak.data + error_valley.data)
