"""Trace-propagation benchmark + re-verified obs overhead gate.

Two jobs, merged into ``BENCH_obs.json`` as a ``"trace"`` section:

1. **Re-verify the <3% disabled-path gate with propagation code in
   place** (``make bench-obs-trace``).  The tracing wire format rides
   the gateway submit path and the worker loop; this bench re-runs the
   paired span-stripped comparison from ``bench_obs_overhead`` (fewer
   rounds — the full-depth gate stays ``make obs-overhead``) so a
   regression introduced by the propagation imports/plumbing fails the
   build at the same budget.

2. **Trace-primitive microbenches.**  Per-op cost of the propagation
   hot path — ``TraceContext.mint`` (blake2b ids + sampling decision),
   ``child`` span derivation, ``to_wire``/``from_wire`` codec, and
   ``Histogram.observe`` with and without an exemplar — so the perf
   trajectory records what a traced submit actually adds per request.

Run directly: ``PYTHONPATH=src python benchmarks/bench_obs_trace.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from bench_obs_overhead import (
    ABSOLUTE_FLOOR,
    BENCH_PATH,
    RELATIVE_BUDGET,
    _dataset,
    measure_overhead,
)
from repro.obs.metrics import Histogram
from repro.obs.propagate import TraceContext

GATE_REPEATS = 3       # reduced rounds: re-verify, not re-measure
MICRO_ITERS = 20_000   # per-primitive loop count


def _per_op_seconds(func, iterations: int = MICRO_ITERS) -> float:
    func()  # warm-up outside the clock
    started = time.perf_counter()
    for _ in range(iterations):
        func()
    return (time.perf_counter() - started) / iterations


def measure_trace_primitives() -> dict:
    """Median-free single-pass microbenches; each is thousands of ops so
    scheduler noise averages out within the loop."""
    context = TraceContext.mint(seed=0, service_id="svc-0", sequence=17)
    wire = context.to_wire()
    histogram = Histogram("bench.ack_seconds")
    results = {
        "iterations": MICRO_ITERS,
        "mint_seconds": _per_op_seconds(
            lambda: TraceContext.mint(0, "svc-0", 17)),
        "child_seconds": _per_op_seconds(
            lambda: context.child("worker.update", qualifier="0:1")),
        "to_wire_seconds": _per_op_seconds(context.to_wire),
        "from_wire_seconds": _per_op_seconds(
            lambda: TraceContext.from_wire(wire)),
        "observe_seconds": _per_op_seconds(
            lambda: histogram.observe(0.004)),
        "observe_exemplar_seconds": _per_op_seconds(
            lambda: histogram.observe(0.004, exemplar=context.trace_id)),
    }
    return results


def main() -> int:
    dataset = _dataset()
    overhead = measure_overhead(dataset, repeats=GATE_REPEATS)
    primitives = measure_trace_primitives()

    payload = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    payload["trace"] = {
        "overhead_reverify": overhead,
        "primitives": primitives,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, default=float))
    print(f"wrote {BENCH_PATH} (trace section)")

    per_submit = (primitives["mint_seconds"] + primitives["to_wire_seconds"]
                  + primitives["observe_exemplar_seconds"])
    print(f"trace primitives: mint {primitives['mint_seconds'] * 1e6:.2f} us"
          f"  child {primitives['child_seconds'] * 1e6:.2f} us"
          f"  wire codec {(primitives['to_wire_seconds'] + primitives['from_wire_seconds']) * 1e6:.2f} us"
          f"  (~{per_submit * 1e6:.2f} us per traced submit)")
    print(f"disabled-path overhead (propagation in place): "
          f"{(overhead['overhead_ratio'] - 1.0) * 100:+.2f}% "
          f"({overhead['delta_seconds'] * 1e3:+.1f} ms median paired diff) "
          f"over {overhead['baseline_seconds']:.3f}s baseline "
          f"[budget {RELATIVE_BUDGET:.0%} or {ABSOLUTE_FLOOR * 1e3:.0f} ms]")
    if not overhead["passed"]:
        print("FAIL: disabled-path instrumentation exceeds the overhead "
              "budget with trace propagation code in place")
        return 1
    print("ok: trace propagation keeps the disabled path inside the budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
