"""Fig. 1(a)/(b) — the paper's motivating observations.

(a) Per-service normal data projected to 2-D scatters without cluster
    structure (services have genuinely different normal patterns).
(b) Unified vs tailored F1 for six baselines on SMD: the unified model is
    substantially worse — the C1 challenge.
"""

import numpy as np

from common import (
    baseline_factory,
    bench_dataset,
    run_once,
    save_results,
    scale_params,
    tailored_factory,
)
from repro.data import tailored_singletons, unified_groups
from repro.eval import format_table, run_tailored, run_unified

FIG1B_METHODS = ("DCdetector", "AnomalyTransformer", "DVGCRN", "OmniAnomaly",
                 "MSCRED", "TranAD")


def service_projection(dataset):
    """Fig. 1(a): PCA of per-service feature summaries to 2-D."""
    summaries = []
    for service in dataset:
        spectrum = np.abs(np.fft.rfft(service.train, axis=0)).mean(axis=1)
        summaries.append(spectrum[:64] / (spectrum[:64].sum() + 1e-12))
    matrix = np.asarray(summaries)
    centered = matrix - matrix.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:2].T


def compute():
    params = scale_params()
    dataset = bench_dataset("smd")
    projection = service_projection(dataset)

    unified = {}
    tailored = {}
    groups = unified_groups(dataset, params["group_size"])
    singles = tailored_singletons(dataset, limit=params["tailored_limit"])
    for method in FIG1B_METHODS:
        unified[method] = run_unified(baseline_factory(method), groups).f1
        tailored[method] = run_tailored(tailored_factory(method), singles).f1
    return projection, unified, tailored


def test_fig1_motivation(benchmark):
    projection, unified, tailored = run_once(benchmark, compute)
    print()
    print("Fig. 1(a) — 2-D projection of per-service normal spectra "
          "(x, y per service):")
    for index, (x, y) in enumerate(projection):
        print(f"  service {index:02d}: ({x:+.3f}, {y:+.3f})")
    spread = projection.std(axis=0)
    print(f"  spread: ({spread[0]:.3f}, {spread[1]:.3f})")
    print()
    rows = [
        (method, unified[method], tailored[method],
         tailored[method] - unified[method])
        for method in FIG1B_METHODS
    ]
    print(format_table(
        ("method", "unified F1", "tailored F1", "gap"), rows,
        title="Fig. 1(b) — unified vs tailored F1 on SMD",
    ))
    save_results("fig1", {
        "projection": projection.tolist(),
        "unified": unified,
        "tailored": tailored,
    })
    # Shape: tailoring helps on the diverse dataset (C1).  At this reduced
    # scale individual weak baselines can be noisy, so require the majority
    # of methods (or the average) to improve when tailored.
    gaps = np.array([tailored[m] - unified[m] for m in FIG1B_METHODS])
    assert gaps.mean() > 0 or (gaps > 0).sum() >= 4, (
        f"tailored models should beat unified on SMD; gaps={dict(zip(FIG1B_METHODS, gaps.round(3)))}"
    )
