"""Baseline detectors: contract compliance and basic detection ability."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    AnomalyTransformerDetector,
    BaselineConfig,
    DcDetector,
    JumpStarterDetector,
    MscredDetector,
    ProsDetector,
    TranAdDetector,
    VaeDetector,
)
from repro.core.detector import AnomalyDetector

FAST = BaselineConfig(window=40, epochs=2, train_stride=8, batch_size=32)

NEURAL_NAMES = [n for n in ALL_BASELINES if n != "JumpStarter"]


def _make(name):
    cls = ALL_BASELINES[name]
    return cls(FAST) if name != "JumpStarter" else cls(window=40)


@pytest.fixture(scope="module")
def fitted():
    """Fit every baseline once on a small two-service dataset."""
    from repro.data import load_dataset

    dataset = load_dataset("smd", num_services=2, train_length=384,
                           test_length=384, seed=2)
    ids = [s.service_id for s in dataset]
    trains = [s.train for s in dataset]
    detectors = {}
    for name in ALL_BASELINES:
        detector = _make(name)
        detector.fit(ids, trains)
        detectors[name] = detector
    return dataset, detectors


class TestContract:
    def test_registry_complete(self):
        assert set(ALL_BASELINES) == {
            "DCdetector", "AnomalyTransformer", "DVGCRN", "JumpStarter",
            "OmniAnomaly", "MSCRED", "TranAD", "ProS", "VAE", "LSTM-NDT",
        }

    def test_all_are_detectors(self):
        for cls in ALL_BASELINES.values():
            assert issubclass(cls, AnomalyDetector)

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_score_shape_and_positivity(self, fitted, name):
        dataset, detectors = fitted
        service = dataset[0]
        scores = detectors[name].score(service.service_id, service.test)
        assert scores.shape == (len(service.test),)
        assert np.isfinite(scores).all()
        assert np.all(scores >= 0)

    @pytest.mark.parametrize("name", sorted(NEURAL_NAMES))
    def test_training_loss_recorded(self, fitted, name):
        _, detectors = fitted
        assert len(detectors[name].epoch_losses) == FAST.epochs

    @pytest.mark.parametrize("name", sorted(NEURAL_NAMES))
    def test_unfitted_score_raises(self, name):
        with pytest.raises(RuntimeError):
            _make(name).score("svc", np.zeros((100, 2)))

    def test_jumpstarter_unfitted_raises(self):
        with pytest.raises(KeyError):
            JumpStarterDetector(window=40).score("svc", np.zeros((100, 2)))

    @pytest.mark.parametrize("name", sorted(NEURAL_NAMES))
    def test_parameter_count_positive(self, fitted, name):
        _, detectors = fitted
        assert detectors[name].num_parameters() > 0


class TestDetectionAbility:
    """Every baseline must flag a blatant spike on an easy periodic series."""

    @pytest.fixture(scope="class")
    def easy_case(self):
        rng = np.random.default_rng(4)
        t = np.arange(1024)
        train = np.stack([np.sin(2 * np.pi * t / 16),
                          np.cos(2 * np.pi * t / 16)], axis=1)
        train += 0.05 * rng.normal(size=train.shape)
        test = train.copy()
        test[300:304] += 6.0
        labels = np.zeros(1024, dtype=bool)
        labels[300:304] = True
        return train, test, labels

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_spike_scores_above_median(self, easy_case, name):
        train, test, labels = easy_case
        detector = _make(name)
        detector.fit(["svc"], [train])
        scores = detector.score("svc", test)
        spike_score = scores[labels].max()
        floor = np.median(scores[~labels])
        assert spike_score > 2.0 * floor, (
            f"{name} failed to raise the spike above its score floor"
        )


class TestSpecificBehaviours:
    def test_vae_latent_bottleneck(self):
        detector = VaeDetector(FAST, hidden=32, latent=4)
        assert detector.latent == 4

    def test_mscred_segment_validation(self):
        with pytest.raises(ValueError):
            MscredDetector(BaselineConfig(window=40), segments=7)

    def test_mscred_signature_matrices_symmetry(self, rng):
        from repro.baselines.mscred import signature_matrices

        windows = rng.normal(size=(3, 40, 4))
        sig = signature_matrices(windows, segments=8).reshape(3, 8, 4, 4)
        np.testing.assert_allclose(sig, np.swapaxes(sig, -1, -2), atol=1e-12)

    def test_dcdetector_patch_validation(self):
        with pytest.raises(ValueError):
            DcDetector(BaselineConfig(window=40), patch=7).fit(
                ["svc"], [np.zeros((100, 2))]
            )

    def test_pros_tracks_domains(self, rng):
        detector = ProsDetector(FAST)
        trains = [rng.normal(size=(200, 2)) for _ in range(2)]
        detector.fit(["a", "b"], trains)
        assert detector._domain_index("a") == 0
        assert detector._domain_index("b") == 1
        assert detector._domain_index("unseen") == 0  # zero-shot fallback

    def test_jumpstarter_prepare_service(self, rng):
        detector = JumpStarterDetector(window=40)
        series = rng.normal(size=(300, 2))
        detector.prepare_service("new", series)
        scores = detector.score("new", rng.normal(size=(120, 2)))
        assert scores.shape == (120,)

    def test_jumpstarter_sampling_validation(self):
        with pytest.raises(ValueError):
            JumpStarterDetector(sample_fraction=0.01)

    def test_tranad_two_phases_differ(self, rng):
        from repro.baselines.tranad import TranAdModel
        from repro.nn import Tensor

        model = TranAdModel(window=20, num_features=2)
        phase1, phase2 = model(Tensor(rng.normal(size=(2, 20, 2))))
        assert not np.allclose(phase1.data, phase2.data)

    def test_anomaly_transformer_discrepancy_shape(self, rng):
        from repro.baselines.anomaly_transformer import association_discrepancy

        series = np.abs(rng.random((2, 4, 10, 10)))
        series = series / series.sum(-1, keepdims=True)
        prior = np.abs(rng.random((2, 4, 10, 10)))
        prior = prior / prior.sum(-1, keepdims=True)
        discrepancy = association_discrepancy(series, prior)
        assert discrepancy.shape == (2, 10)
        assert np.all(discrepancy >= 0)

    def test_dvgcrn_adjacency_is_stochastic(self, rng):
        from repro.baselines.dvgcrn import DvgcrnModel

        model = DvgcrnModel(num_features=4)
        adjacency = model.adjacency()
        np.testing.assert_allclose(adjacency.data.sum(axis=-1), 1.0, atol=1e-9)
