"""Cross-process trace propagation: contexts on the wire, spans on disk.

The in-process tracer (:mod:`repro.obs.tracing`) attributes time within
one process; a gateway submit crosses four boundaries — asyncio
dispatcher, WAL, shard queue, worker pipe — and the only way to explain
an ack's p99 after the fact is a trace that survives every hop.  This
module is the wire half of that story:

* :class:`TraceContext` — the compact context minted once at gateway
  admission: a trace id, the current span id (the parent for anything
  recorded downstream), and the sampling decision.  Every field is a
  **deterministic** function of ``(seed, service, sequence)`` — BLAKE2b
  digests, not random draws — so a replayed WAL regenerates the very ids
  the original admission minted and chaos runs stay bitwise comparable.
* ``to_wire()`` / ``from_wire()`` — a plain JSON dict that rides the
  submit envelope, the WAL frame, the shard queue, and the worker IPC
  command.  ``from_wire`` tolerates ``None`` and unknown shapes, which is
  what keeps schema-1 WAL frames (pre-trace) replayable.
* :class:`TraceLog` — an append-only ``spans.jsonl`` sink with the same
  torn-write stance as the event log: one flushed line per span, so a
  worker killed mid-ack leaves every *recorded* span readable.  Records
  are span dicts compatible with :func:`repro.obs.tracing.aggregate_spans`
  plus the trace fields (``trace_id`` / ``span_id`` / ``parent_span_id``).
* :func:`read_trace_spans` / :func:`build_trace_tree` — the offline half:
  stream spans back (skipping torn lines) and assemble one trace's spans
  into a parent-linked tree for rendering.

Sampling is decided once, at mint time, from the trace id's own digest:
children inherit the root's fate, so a sampled trace is always a whole
tree and an unsampled one costs nothing downstream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

__all__ = [
    "WIRE_SCHEMA",
    "TraceContext",
    "TraceLog",
    "read_trace_spans",
    "build_trace_tree",
    "render_trace_tree",
    "spans_by_trace",
]

# Bumped on any backwards-incompatible change to the wire dict; readers
# ignore contexts from the future rather than misparse them.
WIRE_SCHEMA = 1

# Sampling resolution: rates are quantised to 1/10000ths of the id space.
_SAMPLE_GRID = 10_000


def _digest(material: str, nbytes: int) -> str:
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=nbytes).hexdigest()


@dataclass(frozen=True)
class TraceContext:
    """One hop's view of a distributed trace (immutable, picklable)."""

    trace_id: str            # 16 hex chars, constant across the trace
    span_id: str             # 12 hex chars, the current span
    sampled: bool            # decided at mint; children inherit

    @classmethod
    def mint(cls, seed: int, service_id: str, sequence: int,
             sample_rate: float = 1.0) -> "TraceContext":
        """Mint the root context for one admitted update.

        Deterministic: the same ``(seed, service, sequence)`` always
        yields the same ids and the same sampling verdict, so a WAL
        replay re-derives exactly what the original admission minted.
        """
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        trace_id = _digest(f"{seed}:{service_id}:{sequence}", 8)
        span_id = _digest(f"{trace_id}:gateway.submit", 6)
        sampled = (int(trace_id, 16) % _SAMPLE_GRID
                   < round(sample_rate * _SAMPLE_GRID))
        return cls(trace_id=trace_id, span_id=span_id, sampled=sampled)

    def child(self, name: str, qualifier: str = "") -> "TraceContext":
        """Derive a child context: same trace, new span id.

        ``qualifier`` disambiguates repeats of the same logical child
        (worker incarnations, replay passes) without any shared counter.
        """
        span_id = _digest(f"{self.trace_id}:{self.span_id}:{name}:"
                          f"{qualifier}", 6)
        return TraceContext(trace_id=self.trace_id, span_id=span_id,
                            sampled=self.sampled)

    # -- wire format ---------------------------------------------------
    def to_wire(self) -> dict:
        return {"schema": WIRE_SCHEMA, "trace_id": self.trace_id,
                "span_id": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, wire: object) -> Optional["TraceContext"]:
        """Decode a wire dict; ``None`` for absent/foreign/torn shapes.

        Schema-1 WAL frames predate tracing and simply have no context —
        replay of those frames proceeds untraced rather than failing.
        """
        if not isinstance(wire, dict):
            return None
        if wire.get("schema") != WIRE_SCHEMA:
            return None
        trace_id, span_id = wire.get("trace_id"), wire.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   sampled=bool(wire.get("sampled", True)))


class TraceLog:
    """Append-only ``spans.jsonl`` sink for cross-process spans.

    Every :meth:`record` writes (and flushes) one sorted-key JSON line,
    so a crash tears at most the final line — which
    :func:`read_trace_spans` skips, the event log's exact stance.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def record(self, name: str, context: TraceContext, seconds: float, *,
               parent_span_id: Optional[str] = None, depth: int = 0,
               start: float = 0.0, **attrs: object) -> dict:
        """Append one completed span under ``context``; returns it."""
        span = {
            "name": name,
            "path": name,
            "depth": depth,
            "start": float(start),
            "seconds": float(seconds),
            "trace_id": context.trace_id,
            "span_id": context.span_id,
        }
        if parent_span_id is not None:
            span["parent_span_id"] = parent_span_id
        if attrs:
            span["attrs"] = {key: _jsonable(value)
                             for key, value in attrs.items()}
        self._file.write(json.dumps(span, sort_keys=True) + "\n")
        self._file.flush()
        return span

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def read_trace_spans(path: str | Path) -> Iterator[dict]:
    """Stream span dicts back from a ``spans.jsonl`` file.

    Blank and torn (undecodable) lines are skipped, so a log written
    through a worker kill is readable up to the tear.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def build_trace_tree(spans: List[dict], trace_id: str) -> List[dict]:
    """Assemble one trace's spans into parent-linked root nodes.

    Each returned node is ``{"span": <span dict>, "children": [...]}``;
    spans whose ``parent_span_id`` is absent from the trace (the gateway
    root, or an orphan from a torn log) become roots.  Children keep
    file order, which is write order, which is causal order per file.
    """
    mine = [s for s in spans if s.get("trace_id") == trace_id]
    nodes = {s["span_id"]: {"span": s, "children": []}
             for s in mine if "span_id" in s}
    roots: List[dict] = []
    for span in mine:
        node = nodes.get(span.get("span_id"))
        if node is None:
            continue
        parent = nodes.get(span.get("parent_span_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


def render_trace_tree(spans: List[dict], trace_id: str) -> str:
    """Indent-rendered trace tree (the ``obs report`` drill-down view)."""
    roots = build_trace_tree(spans, trace_id)
    if not roots:
        return f"  trace {trace_id}: no spans recorded"
    lines = [f"  trace {trace_id}"]

    def _walk(node: dict, indent: int) -> None:
        span = node["span"]
        attrs = span.get("attrs") or {}
        detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        lines.append(f"  {'  ' * indent}- {span.get('name', '?')} "
                     f"{1e3 * float(span.get('seconds', 0.0)):.3f} ms"
                     + (f"  [{detail}]" if detail else ""))
        for child in node["children"]:
            _walk(child, indent + 1)

    for root in roots:
        _walk(root, 1)
    return "\n".join(lines)


def spans_by_trace(spans: List[dict]) -> Dict[str, List[dict]]:
    """Group span dicts by trace id (untraced spans are dropped)."""
    grouped: Dict[str, List[dict]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if isinstance(trace_id, str):
            grouped.setdefault(trace_id, []).append(span)
    return grouped
