"""Sliding-window pipeline feeding the detectors.

All reconstruction models consume fixed-length windows; at test time every
timestamp needs a score, which :func:`scores_to_timeline` assembles from
per-window, per-timestep errors (averaging overlaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "sliding_windows",
    "window_starts",
    "WindowBatch",
    "WindowDataset",
    "scores_to_timeline",
]


def sliding_windows(series: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """``(T_total, m) -> (W, window, m)`` windows with the given stride."""
    if series.ndim == 1:
        series = series[:, None]
    if series.shape[0] < window:
        raise ValueError(
            f"series length {series.shape[0]} shorter than window {window}"
        )
    if stride < 1:
        raise ValueError("stride must be >= 1")
    views = sliding_window_view(series, window, axis=0)  # (W, m, window)
    return np.ascontiguousarray(np.moveaxis(views[::stride], -1, 1))


def window_starts(length: int, window: int, stride: int = 1) -> np.ndarray:
    """Start index of each window produced by :func:`sliding_windows`."""
    return np.arange(0, length - window + 1, stride)


@dataclass
class WindowBatch:
    """A mini-batch of windows from one service."""

    windows: np.ndarray  # (B, window, m)
    service_index: int
    service_id: str


class WindowDataset:
    """Windows from several services, batched per service.

    MACE's pattern extraction projects each window onto its *service's*
    subspace, so batches never mix services; shuffling happens at the
    (service, batch) level, which also matches how the unified-model
    training in the paper feeds ten subsets to one model.
    """

    def __init__(self, series_per_service: Sequence[np.ndarray],
                 service_ids: Sequence[str], window: int, stride: int = 1):
        if len(series_per_service) != len(service_ids):
            raise ValueError("series and ids must align")
        self.window = window
        self.stride = stride
        self.service_ids = list(service_ids)
        self._windows: List[np.ndarray] = [
            sliding_windows(series, window, stride) for series in series_per_service
        ]

    @property
    def num_services(self) -> int:
        return len(self._windows)

    @property
    def num_windows(self) -> int:
        return sum(w.shape[0] for w in self._windows)

    def service_windows(self, index: int) -> np.ndarray:
        return self._windows[index]

    def batches(self, batch_size: int, rng: np.random.Generator | None = None,
                shuffle: bool = True) -> Iterator[WindowBatch]:
        """Yield per-service batches, optionally shuffled across services."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        plan: List[Tuple[int, np.ndarray]] = []
        for service_index, windows in enumerate(self._windows):
            order = np.arange(windows.shape[0])
            if shuffle and rng is not None:
                rng.shuffle(order)
            for start in range(0, order.size, batch_size):
                plan.append((service_index, order[start:start + batch_size]))
        if shuffle and rng is not None:
            rng.shuffle(plan)
        for service_index, picks in plan:
            yield WindowBatch(
                windows=self._windows[service_index][picks],
                service_index=service_index,
                service_id=self.service_ids[service_index],
            )


def scores_to_timeline(window_scores: np.ndarray, length: int, window: int,
                       stride: int = 1) -> np.ndarray:
    """Average per-window, per-timestep scores into a per-timestamp score.

    ``window_scores`` is ``(W, window)``; overlapping contributions are
    averaged.  Timestamps not covered by any window (tail when stride > 1)
    inherit the nearest covered score.
    """
    if window_scores.ndim != 2 or window_scores.shape[1] != window:
        raise ValueError("window_scores must be (num_windows, window)")
    totals = np.zeros(length)
    counts = np.zeros(length)
    starts = window_starts(length, window, stride)
    if starts.size != window_scores.shape[0]:
        raise ValueError(
            f"expected {starts.size} windows for length={length}, "
            f"got {window_scores.shape[0]}"
        )
    for row, start in enumerate(starts):
        totals[start:start + window] += window_scores[row]
        counts[start:start + window] += 1.0
    covered = counts > 0
    timeline = np.zeros(length)
    timeline[covered] = totals[covered] / counts[covered]
    if not covered.all() and covered.any():
        # forward/backward fill uncovered edges with nearest covered value
        indices = np.where(covered)[0]
        timeline[:indices[0]] = timeline[indices[0]]
        timeline[indices[-1]:] = timeline[indices[-1]]
    return timeline
