"""Closed-loop remediation: one incident, end to end, narrated.

``fault_tolerant_serving.py`` shows the runtime *containing* a failure —
the breaker quarantines a broken service and a spectral fallback keeps
scoring it.  This script closes the loop: a ``RemediationController``
watches the same fleet, and when a scripted outage trips a breaker it
opens an incident, diagnoses the root cause from evidence, runs a typed
remediation action under policy guardrails, and only resolves the
incident after the service has *stayed* healthy with bounded score
drift.  The whole episode lands in a JSONL event log and is re-rendered
at the end from the file alone — the same path ``repro obs report``
uses.

Run:  python examples/closed_loop_remediation.py
"""

import tempfile
from pathlib import Path

from repro.core import MaceConfig, MaceDetector
from repro.data import load_dataset
from repro.obs.events import EventLog, install_event_log
from repro.obs.report import render_report
from repro.runtime import (
    BreakerConfig,
    FaultInjector,
    RemediationController,
    ServingRuntime,
)
from repro.runtime.remediation import IncidentState

OUTAGE = range(80, 140)


def main() -> None:
    dataset = load_dataset("smd", num_services=3, train_length=768,
                           test_length=512, seed=7)
    ids = [s.service_id for s in dataset]
    victim = ids[1]

    detector = MaceDetector(MaceConfig(epochs=4))
    detector.fit(ids, [s.train for s in dataset])
    faulty = FaultInjector(seed=0, corrupt_prob=0.0,
                           raise_prob=0.0).wrap_detector(detector)

    run_dir = Path(tempfile.mkdtemp(prefix="remediation-"))
    tick = [0]
    event_log = EventLog(run_dir / "events.jsonl",
                         clock=lambda: float(tick[0]))
    previous = install_event_log(event_log)
    try:
        runtime = ServingRuntime(
            faulty, window=40, q=5e-3,
            breaker_config=BreakerConfig(failure_threshold=3, base_backoff=4,
                                         max_backoff=64))
        controller = RemediationController(runtime)
        for service in dataset:
            runtime.start_service(service.service_id, service.train)
            controller.watch(service.service_id, history=service.train)
        print(f"serving {len(ids)} services; scoring outage on {victim} "
              f"for steps {OUTAGE.start}-{OUTAGE.stop}\n")

        seen = set()
        for step in range(len(dataset[0].test)):
            tick[0] = step + 1
            faulty.fail_services = {victim} if step in OUTAGE else set()
            for service in dataset:
                controller.step(service.service_id, service.test[step])
            incident = controller.active_incident(victim)
            if incident is not None and incident.state not in seen:
                seen.add(incident.state)
                detail = ""
                if incident.state is IncidentState.OPEN and incident.diagnosis:
                    detail = f" ({incident.diagnosis.alert_class.value})"
                elif incident.actions:
                    detail = f" ({incident.actions[-1][0]})"
                print(f"  t={step:3d}  incident {incident.incident_id} "
                      f"-> {incident.state.value}{detail}")

        incident = controller.incidents[0]
        print(f"\nincident {incident.incident_id}: "
              f"{incident.state.value} after "
              f"{[f'{name}:{outcome}' for name, outcome in incident.actions]}")
        print(f"final health of {victim}: "
              f"{runtime.health(victim).state.value}")
        report = controller.report()
        print(f"controller report: {report['by_state']}, "
              f"policy violations {report['policy']['violations']}")
        assert incident.state is IncidentState.RESOLVED
    finally:
        install_event_log(previous)
        event_log.close()

    print(f"\n--- timeline re-rendered from {run_dir}/events.jsonl ---")
    text = render_report(run_dir)
    start = text.index("remediation incidents")
    print(text[start:])


if __name__ == "__main__":
    main()
